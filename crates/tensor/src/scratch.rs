//! [`Scratch`]: a reusable workspace that makes the training hot path
//! allocation-free.
//!
//! The workspace owns three kinds of storage:
//!
//! * a **buffer pool** of `Vec<f32>` (and `Vec<usize>`) recycled between
//!   [`Scratch::take`] / [`Scratch::recycle`] calls — layer outputs,
//!   gradients, im2col matrices and cached activations all draw from it;
//! * **GEMM pack workspaces** ([`GemmWorkspace`]) — one for the serial
//!   kernel plus one per parallel worker group;
//! * **counters** ([`ScratchStats`]) that expose pool behaviour and kernel
//!   efficiency to telemetry and tests.
//!
//! Ownership rules (documented in DESIGN.md §11):
//!
//! 1. `take` transfers ownership of a buffer to the caller; the pool keeps
//!    no reference. Returning it with `recycle` (or
//!    [`Scratch::recycle_tensor`]) is optional but required for steady-state
//!    reuse — dropped buffers are simply freed.
//! 2. Only recycle buffers that were either taken from the pool or are
//!    produced at a rate matched by takes, otherwise the pool grows without
//!    bound.
//! 3. Buffers keep their capacity while pooled (`reset, not freed`), so a
//!    training loop with fixed shapes stops allocating after the first
//!    step — asserted by [`ScratchStats::grows`] staying flat.

use crate::ops::gemm::{GemmStats, GemmWorkspace};
use crate::Tensor;

/// Pool and kernel counters for one [`Scratch`].
///
/// `grows` is the key steady-state signal: it increments only when a `take`
/// could not be served from the pool. After a warm-up step over fixed
/// shapes it must stay constant.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ScratchStats {
    /// Buffer requests served (f32 and index pools combined).
    pub takes: u64,
    /// Requests satisfied by a pooled buffer without allocating.
    pub hits: u64,
    /// Requests that had to allocate a fresh buffer.
    pub grows: u64,
    /// Aggregated GEMM kernel counters (main + worker workspaces).
    pub gemm: GemmStats,
}

impl ScratchStats {
    /// Average GEMM throughput in GFLOP/s since the last stats reset
    /// (0 when no kernel time has been recorded).
    pub fn gemm_gflops(&self) -> f64 {
        if self.gemm.total_seconds > 0.0 {
            self.gemm.flops / self.gemm.total_seconds / 1e9
        } else {
            0.0
        }
    }

    /// Fraction of GEMM wall time spent packing panels, in `[0, 1]`.
    ///
    /// Worker pack time overlaps the measured total on multi-core runs, so
    /// treat values near 1 as "pack dominated" rather than exact.
    pub fn gemm_pack_share(&self) -> f64 {
        if self.gemm.total_seconds > 0.0 {
            (self.gemm.pack_seconds / self.gemm.total_seconds).min(1.0)
        } else {
            0.0
        }
    }
}

/// Reusable scratch memory for tensor kernels and layer forward/backward
/// passes. See the module docs for the ownership rules.
#[derive(Debug, Default)]
pub struct Scratch {
    free_f32: Vec<Vec<f32>>,
    free_idx: Vec<Vec<usize>>,
    free_u8: Vec<Vec<u8>>,
    gemm: GemmWorkspace,
    workers: Vec<GemmWorkspace>,
    takes: u64,
    hits: u64,
    grows: u64,
}

/// Best-fit lookup: index of the smallest pooled buffer with enough
/// capacity, or `None`.
fn best_fit<T>(pool: &[Vec<T>], len: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        if cap >= len && best.is_none_or(|(_, bcap)| cap < bcap) {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| i)
}

impl Scratch {
    /// An empty workspace.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Take a buffer of exactly `len` elements. Contents are unspecified
    /// (use [`Scratch::take_zeroed`] when zeroes matter). The buffer is
    /// owned by the caller; return it with [`Scratch::recycle`] so the
    /// capacity is reused.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        match best_fit(&self.free_f32, len) {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.free_f32.swap_remove(i);
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.grows += 1;
                vec![0.0; len]
            }
        }
    }

    /// Take a buffer of `len` zeroes.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Take an index buffer of `len` elements (unspecified contents).
    pub fn take_idx(&mut self, len: usize) -> Vec<usize> {
        self.takes += 1;
        match best_fit(&self.free_idx, len) {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.free_idx.swap_remove(i);
                buf.resize(len, 0);
                buf
            }
            None => {
                self.grows += 1;
                vec![0; len]
            }
        }
    }

    /// Take a byte buffer of `len` elements (unspecified contents) — the
    /// quantized-activation staging pool for the int8 inference path.
    pub fn take_u8(&mut self, len: usize) -> Vec<u8> {
        self.takes += 1;
        match best_fit(&self.free_u8, len) {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.free_u8.swap_remove(i);
                buf.resize(len, 0);
                buf
            }
            None => {
                self.grows += 1;
                vec![0; len]
            }
        }
    }

    /// Return a buffer to the pool, keeping its capacity for later takes.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free_f32.push(buf);
        }
    }

    /// Return an index buffer to the pool.
    pub fn recycle_idx(&mut self, buf: Vec<usize>) {
        if buf.capacity() > 0 {
            self.free_idx.push(buf);
        }
    }

    /// Return a byte buffer to the pool.
    pub fn recycle_u8(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 {
            self.free_u8.push(buf);
        }
    }

    /// Recycle a tensor's element storage (the shape metadata is dropped).
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_vec());
    }

    /// The workspace used by serial GEMM calls.
    pub fn gemm_mut(&mut self) -> &mut GemmWorkspace {
        &mut self.gemm
    }

    /// Split access for the grouped GEMM path: the main workspace (B panel
    /// packing) plus `groups` worker workspaces (A panel packing), grown on
    /// demand and reused across calls.
    pub fn gemm_workspaces(&mut self, groups: usize) -> (&mut GemmWorkspace, &mut [GemmWorkspace]) {
        if self.workers.len() < groups {
            self.workers.resize_with(groups, GemmWorkspace::new);
        }
        (&mut self.gemm, &mut self.workers[..groups])
    }

    /// Snapshot the counters (pool + aggregated GEMM stats).
    pub fn stats(&self) -> ScratchStats {
        let mut gemm = self.gemm.stats;
        for w in &self.workers {
            gemm.merge(&w.stats);
        }
        ScratchStats {
            takes: self.takes,
            hits: self.hits,
            grows: self.grows,
            gemm,
        }
    }

    /// Zero all counters (pooled buffers are kept).
    pub fn reset_stats(&mut self) {
        self.takes = 0;
        self.hits = 0;
        self.grows = 0;
        self.gemm.stats = GemmStats::default();
        for w in &mut self.workers {
            w.stats = GemmStats::default();
        }
    }

    /// Drop every pooled buffer and pack workspace, freeing their memory.
    pub fn clear(&mut self) {
        self.free_f32.clear();
        self.free_idx.clear();
        self.free_u8.clear();
        self.gemm = GemmWorkspace::new();
        self.workers.clear();
    }

    /// Number of buffers currently parked in the pools.
    pub fn pooled_buffers(&self) -> usize {
        self.free_f32.len() + self.free_idx.len() + self.free_u8.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_capacity() {
        let mut s = Scratch::new();
        let buf = s.take(100);
        let ptr = buf.as_ptr();
        s.recycle(buf);
        let again = s.take(80); // smaller fits the same allocation
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.len(), 80);
        let st = s.stats();
        assert_eq!((st.takes, st.hits, st.grows), (2, 1, 1));
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut s = Scratch::new();
        let mut buf = s.take(4);
        buf.fill(9.0);
        s.recycle(buf);
        assert_eq!(s.take_zeroed(4), vec![0.0; 4]);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        let big = s.take(1000);
        let small = s.take(10);
        let small_ptr = small.as_ptr();
        s.recycle(big);
        s.recycle(small);
        let got = s.take(8);
        assert_eq!(got.as_ptr(), small_ptr);
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut s = Scratch::new();
        for _ in 0..3 {
            let a = s.take(64);
            let b = s.take(128);
            s.recycle(a);
            s.recycle(b);
        }
        let st = s.stats();
        assert_eq!(st.grows, 2, "only the first round allocates");
        assert_eq!(st.takes, 6);
    }

    #[test]
    fn u8_pool_round_trips() {
        let mut s = Scratch::new();
        let buf = s.take_u8(64);
        let ptr = buf.as_ptr();
        s.recycle_u8(buf);
        let again = s.take_u8(48);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn idx_pool_round_trips() {
        let mut s = Scratch::new();
        let buf = s.take_idx(16);
        let ptr = buf.as_ptr();
        s.recycle_idx(buf);
        let again = s.take_idx(16);
        assert_eq!(again.as_ptr(), ptr);
    }

    #[test]
    fn recycle_tensor_feeds_the_pool() {
        let mut s = Scratch::new();
        let t = Tensor::zeros([4, 4]);
        s.recycle_tensor(t);
        assert_eq!(s.pooled_buffers(), 1);
        assert_eq!(s.take(16).len(), 16);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn reset_stats_keeps_buffers() {
        let mut s = Scratch::new();
        let b = s.take(32);
        s.recycle(b);
        s.reset_stats();
        assert_eq!(s.stats().takes, 0);
        assert_eq!(s.pooled_buffers(), 1);
    }
}
