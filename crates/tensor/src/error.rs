//! Error type shared by all tensor operations.

use std::fmt;

/// Errors raised by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// The left-hand / expected shape.
        lhs: Vec<usize>,
        /// The right-hand / actual shape.
        rhs: Vec<usize>,
    },
    /// The number of elements implied by a shape does not match the buffer.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds for the given axis.
    IndexOutOfBounds {
        /// Axis being indexed.
        axis: usize,
        /// Offending index.
        index: usize,
        /// Axis length.
        len: usize,
    },
    /// A tensor with an unsupported rank was passed to a rank-specific op.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
    /// A parameter was invalid (zero-sized kernel, zero stride, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch between {lhs:?} and {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer holds {actual} elements but shape implies {expected}"
                )
            }
            TensorError::IndexOutOfBounds { axis, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis {axis} of length {len}"
                )
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{op}: expected rank-{expected} tensor, got rank {actual}"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
