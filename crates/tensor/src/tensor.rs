//! The [`Tensor`] type: contiguous row-major `f32` storage plus a shape.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Layout guarantees: `data.len() == shape.len()` at all times, and the
/// element at multi-index `(i0, .., ik)` lives at the row-major offset
/// computed by [`Shape::offset`]. This invariant is what lets the kernels in
/// [`crate::ops`] hand out disjoint row chunks to rayon workers safely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Build a tensor from an existing buffer; the buffer length must match
    /// the number of elements implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A rank-1 tensor holding `data`.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from([data.len()]),
            data: data.to_vec(),
        }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of axes).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index, bounds-checked.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Write an element at a multi-index, bounds-checked.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Unchecked 2-D accessor used by hot kernels (debug-asserted).
    #[inline]
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        let cols = self.shape.dim(1);
        debug_assert!(row < self.shape.dim(0) && col < cols);
        self.data[row * cols + col]
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Borrow one row of a rank-2 tensor.
    pub fn row(&self, row: usize) -> Result<&[f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: row,
                len: rows,
            });
        }
        Ok(&self.data[row * cols..(row + 1) * cols])
    }

    /// Mutably borrow one row of a rank-2 tensor.
    pub fn row_mut(&mut self, row: usize) -> Result<&mut [f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row_mut",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: row,
                len: rows,
            });
        }
        Ok(&mut self.data[row * cols..(row + 1) * cols])
    }

    /// Copy a contiguous batch slice `[start, end)` along axis 0.
    ///
    /// The result keeps the trailing axes and has `end - start` leading rows.
    /// Used to carve minibatches out of a dataset tensor.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "slice_axis0",
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dim(0);
        if start > end || end > n {
            return Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: end,
                len: n,
            });
        }
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        Ok(Tensor {
            shape: Shape::from(dims),
            data: self.data[start * inner..end * inner].to_vec(),
        })
    }

    /// Gather rows along axis 0 by index (with repetition allowed).
    ///
    /// Used to assemble shuffled minibatches from a dataset tensor.
    pub fn gather_axis0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "gather_axis0",
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dim(0);
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            if i >= n {
                return Err(TensorError::IndexOutOfBounds {
                    axis: 0,
                    index: i,
                    len: n,
                });
            }
            data.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(dims, data)
    }

    /// Stack rank-`k` tensors with identical shapes into one rank-`k+1`
    /// tensor along a new leading axis.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("stack of zero tensors".to_string()))?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for t in items {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Ok(Tensor {
            shape: Shape::from(dims),
            data,
        })
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec([c, r], out)
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// A new tensor with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Fill with zeros, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Serialise the element buffer as little-endian bytes (4 per element,
    /// row-major order). On little-endian targets this is a plain view of
    /// the storage; the shape is *not* included — persist it separately and
    /// rebuild with [`Tensor::from_le_bytes`].
    pub fn to_le_bytes(&self) -> Vec<u8> {
        #[cfg(target_endian = "little")]
        {
            // f32 has no padding and every bit pattern is a valid byte view.
            unsafe {
                std::slice::from_raw_parts(self.data.as_ptr().cast::<u8>(), self.data.len() * 4)
            }
            .to_vec()
        }
        #[cfg(not(target_endian = "little"))]
        {
            let mut out = Vec::with_capacity(self.data.len() * 4);
            for v in &self.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
    }

    /// Rebuild a tensor from [`Tensor::to_le_bytes`] output and its shape.
    /// The byte count must be exactly `4 ×` the element count of `shape`.
    pub fn from_le_bytes(shape: impl Into<Shape>, bytes: &[u8]) -> Result<Self> {
        let shape = shape.into();
        if bytes.len() != shape.len() * 4 {
            return Err(TensorError::LengthMismatch {
                expected: shape.len() * 4,
                actual: bytes.len(),
            });
        }
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunked by 4")))
            .collect();
        Ok(Tensor { shape, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([2, 2], vec![1.0; 5]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn le_byte_view_round_trips_every_bit() {
        let t =
            Tensor::from_vec([2, 3], vec![1.5, -0.0, f32::MIN_POSITIVE, 3e38, -7.25, 0.1]).unwrap();
        let bytes = t.to_le_bytes();
        assert_eq!(bytes.len(), 24);
        let back = Tensor::from_le_bytes([2, 3], &bytes).unwrap();
        // Bit-exact, not just approximately equal.
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.dims(), &[2, 3]);
    }

    #[test]
    fn from_le_bytes_rejects_wrong_length() {
        assert!(Tensor::from_le_bytes([2, 2], &[0u8; 15]).is_err());
        assert!(Tensor::from_le_bytes([2, 2], &[0u8; 17]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.get(&[2, 1]).unwrap(), 5.0);
    }

    #[test]
    fn reshape_rejects_bad_len() {
        let t = Tensor::zeros([2, 3]);
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn row_borrow() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[4., 5., 6.]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn slice_axis0_copies_batch() {
        let t = Tensor::from_vec([4, 2], (0..8).map(|i| i as f32).collect()).unwrap();
        let s = t.slice_axis0(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2., 3., 4., 5.]);
    }

    #[test]
    fn slice_axis0_rejects_bad_range() {
        let t = Tensor::zeros([4, 2]);
        assert!(t.slice_axis0(3, 5).is_err());
        assert!(t.slice_axis0(3, 2).is_err());
    }

    #[test]
    fn gather_axis0_selects_and_repeats_rows() {
        let t = Tensor::from_vec([3, 2], vec![0., 1., 2., 3., 4., 5.]).unwrap();
        let g = t.gather_axis0(&[2, 0, 2]).unwrap();
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.as_slice(), &[4., 5., 0., 1., 4., 5.]);
    }

    #[test]
    fn gather_axis0_rejects_out_of_range() {
        let t = Tensor::zeros([3, 2]);
        assert!(t.gather_axis0(&[3]).is_err());
    }

    #[test]
    fn stack_builds_leading_axis() {
        let a = Tensor::from_vec([2], vec![1., 2.]).unwrap();
        let b = Tensor::from_vec([2], vec![3., 4.]).unwrap();
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn stack_rejects_mixed_shapes() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(Tensor::stack(&[a, b]).is_err());
    }

    #[test]
    fn stack_rejects_empty() {
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn transpose2_swaps_axes() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 0]).unwrap(), 3.0);
        assert_eq!(tt.get(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_slice(&[1., -2., 3.]);
        let m = t.map(|v| v.abs());
        assert_eq!(m.as_slice(), &[1., 2., 3.]);
    }
}
