//! im2col / col2im transforms used by the convolution layers.
//!
//! A 2-D convolution over one sample becomes a single matmul:
//!
//! ```text
//! cols   = im2col(x)              // [C·kh·kw, oh·ow]
//! y      = W · cols               // W: [out_c, C·kh·kw]
//! ```
//!
//! and the backward pass reuses the same geometry via [`col2im`].

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution (one stride for both axes, independent
/// zero padding per axis — a zero `pad_h` is what lets `1×k` kernels act as
/// true 1-D convolutions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along the height axis.
    pub pad_h: usize,
    /// Zero padding along the width axis.
    pub pad_w: usize,
}

impl Conv2dGeom {
    /// Validate the geometry and return it.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        Self::with_padding(
            in_channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            padding,
            padding,
        )
    }

    /// Validate a geometry with independent per-axis padding.
    #[allow(clippy::too_many_arguments)]
    pub fn with_padding(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> Result<Self> {
        if in_channels == 0 || in_h == 0 || in_w == 0 {
            return Err(TensorError::InvalidArgument("zero-sized conv input".into()));
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidArgument(
                "zero-sized conv kernel".into(),
            ));
        }
        if stride == 0 {
            return Err(TensorError::InvalidArgument("zero conv stride".into()));
        }
        let g = Conv2dGeom {
            in_channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            pad_h,
            pad_w,
        };
        if kernel_h > in_h + 2 * pad_h || kernel_w > in_w + 2 * pad_w {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {kernel_h}x{kernel_w} stride {stride} pad {pad_h}/{pad_w} does not fit {in_h}x{in_w}"
            )));
        }
        Ok(g)
    }

    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad_h).saturating_sub(self.kernel_h) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad_w).saturating_sub(self.kernel_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: `C · kh · kw`.
    #[inline]
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the im2col matrix: `oh · ow`.
    #[inline]
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unfold one `[C, H, W]` sample (flattened row-major) into a
/// `[C·kh·kw, oh·ow]` matrix. Out-of-image taps contribute zeros.
pub fn im2col(x: &[f32], g: &Conv2dGeom) -> Result<Tensor> {
    let mut out = vec![0.0f32; g.col_rows() * g.col_cols()];
    im2col_into(x, g, &mut out)?;
    Tensor::from_vec([g.col_rows(), g.col_cols()], out)
}

/// [`im2col`] writing into a caller-provided buffer of exactly
/// `col_rows · col_cols` elements (overwritten, including padding zeros),
/// so hot loops can reuse one buffer across samples.
pub fn im2col_into(x: &[f32], g: &Conv2dGeom, out: &mut [f32]) -> Result<()> {
    let expected = g.in_channels * g.in_h * g.in_w;
    if x.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: x.len(),
        });
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let rows = g.col_rows();
    let cols = oh * ow;
    if out.len() != rows * cols {
        return Err(TensorError::LengthMismatch {
            expected: rows * cols,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    let (pad_h, pad_w) = (g.pad_h as isize, g.pad_w as isize);
    for c in 0..g.in_channels {
        let plane = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for kh in 0..g.kernel_h {
            for kw in 0..g.kernel_w {
                let row = (c * g.kernel_h + kh) * g.kernel_w + kw;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride) as isize + kh as isize - pad_h;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue; // whole output row stays zero-padded
                    }
                    let src_row = &plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride) as isize + kw as isize - pad_w;
                        if ix >= 0 && ix < g.in_w as isize {
                            out_row[oy * ow + ox] = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Fold a `[C·kh·kw, oh·ow]` gradient matrix back onto a `[C, H, W]` image,
/// accumulating where receptive fields overlap. Exact adjoint of [`im2col`].
pub fn col2im(cols: &Tensor, g: &Conv2dGeom) -> Result<Vec<f32>> {
    if cols.rank() != 2 || cols.dims() != [g.col_rows(), g.col_cols()] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: vec![g.col_rows(), g.col_cols()],
            rhs: cols.dims().to_vec(),
        });
    }
    let mut img = vec![0.0f32; g.in_channels * g.in_h * g.in_w];
    col2im_into(cols.as_slice(), g, &mut img)?;
    Ok(img)
}

/// [`col2im`] writing into a caller-provided `[C·H·W]` buffer (overwritten),
/// taking the gradient matrix as a raw `col_rows · col_cols` slice so hot
/// loops can fold sub-slices of a batched buffer without a `Tensor` wrapper.
pub fn col2im_into(data: &[f32], g: &Conv2dGeom, img: &mut [f32]) -> Result<()> {
    if data.len() != g.col_rows() * g.col_cols() {
        return Err(TensorError::LengthMismatch {
            expected: g.col_rows() * g.col_cols(),
            actual: data.len(),
        });
    }
    if img.len() != g.in_channels * g.in_h * g.in_w {
        return Err(TensorError::LengthMismatch {
            expected: g.in_channels * g.in_h * g.in_w,
            actual: img.len(),
        });
    }
    img.fill(0.0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    let (pad_h, pad_w) = (g.pad_h as isize, g.pad_w as isize);
    for c in 0..g.in_channels {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for kh in 0..g.kernel_h {
            for kw in 0..g.kernel_w {
                let row = (c * g.kernel_h + kh) * g.kernel_w + kw;
                let src = &data[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride) as isize + kh as isize - pad_h;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride) as isize + kw as isize - pad_w;
                        if ix >= 0 && ix < g.in_w as isize {
                            plane[iy as usize * g.in_w + ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_output_sizes() {
        let g = Conv2dGeom::new(1, 5, 5, 3, 3, 1, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
        let g = Conv2dGeom::new(1, 5, 5, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (5, 5));
        let g = Conv2dGeom::new(1, 6, 6, 2, 2, 2, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
    }

    #[test]
    fn geometry_rejects_degenerate() {
        assert!(Conv2dGeom::new(0, 4, 4, 2, 2, 1, 0).is_err());
        assert!(Conv2dGeom::new(1, 4, 4, 0, 2, 1, 0).is_err());
        assert!(Conv2dGeom::new(1, 4, 4, 2, 2, 0, 0).is_err());
        assert!(
            Conv2dGeom::new(1, 2, 2, 5, 5, 1, 0).is_err(),
            "kernel larger than padded input"
        );
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is the identity (one row).
        let g = Conv2dGeom::new(1, 2, 3, 1, 1, 1, 0).unwrap();
        let x = [1., 2., 3., 4., 5., 6.];
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.dims(), &[1, 6]);
        assert_eq!(cols.as_slice(), &x);
    }

    #[test]
    fn im2col_3x3_known_patch() {
        let g = Conv2dGeom::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        let x = [1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // First output position (top-left window): taps 1,2,4,5 down the rows.
        let c = cols.as_slice();
        assert_eq!([c[0], c[4], c[8], c[12]], [1., 2., 4., 5.]);
        // Last output position (bottom-right window): taps 5,6,8,9.
        assert_eq!([c[3], c[7], c[11], c[15]], [5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zeros_border() {
        let g = Conv2dGeom::new(1, 2, 2, 3, 3, 1, 1).unwrap();
        let x = [1., 2., 3., 4.];
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Kernel tap (0,0) at output (0,0) looks at padded (-1,-1) => 0.
        assert_eq!(cols.as_slice()[0], 0.0);
        // Kernel centre tap (1,1) at output (0,0) sees pixel (0,0) = 1.
        assert_eq!(cols.as_slice()[4 * 4], 1.0);
    }

    #[test]
    fn im2col_checks_input_len() {
        let g = Conv2dGeom::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        assert!(im2col(&[0.0; 8], &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish data: the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let g = Conv2dGeom::new(2, 4, 5, 3, 3, 1, 1).unwrap();
        let x: Vec<f32> = (0..g.in_channels * g.in_h * g.in_w)
            .map(|i| ((i * 13 + 5) % 17) as f32 - 8.0)
            .collect();
        let y_data: Vec<f32> = (0..g.col_rows() * g.col_cols())
            .map(|i| ((i * 7 + 2) % 19) as f32 - 9.0)
            .collect();
        let y = Tensor::from_vec([g.col_rows(), g.col_cols()], y_data).unwrap();
        let cols = im2col(&x, &g).unwrap();
        let lhs: f64 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let back = col2im(&y, &g).unwrap();
        let rhs: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-6 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let g = Conv2dGeom::new(2, 4, 5, 3, 3, 1, 1).unwrap();
        let x: Vec<f32> = (0..g.in_channels * g.in_h * g.in_w)
            .map(|i| ((i * 3 + 1) % 7) as f32 - 3.0)
            .collect();
        let cols = im2col(&x, &g).unwrap();
        let mut buf = vec![9.0f32; g.col_rows() * g.col_cols()];
        im2col_into(&x, &g, &mut buf).unwrap();
        assert_eq!(buf, cols.as_slice());

        let back = col2im(&cols, &g).unwrap();
        let mut img = vec![-1.0f32; x.len()];
        col2im_into(cols.as_slice(), &g, &mut img).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn into_variants_check_buffer_lengths() {
        let g = Conv2dGeom::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        let x = [0.0f32; 9];
        let mut short = vec![0.0f32; 3];
        assert!(im2col_into(&x, &g, &mut short).is_err());
        let cols = vec![0.0f32; g.col_rows() * g.col_cols()];
        let mut img = vec![0.0f32; 5];
        assert!(col2im_into(&cols, &g, &mut img).is_err());
    }

    #[test]
    fn col2im_shape_check() {
        let g = Conv2dGeom::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        let bad = Tensor::zeros([3, 4]);
        assert!(col2im(&bad, &g).is_err());
    }
}
