//! Reductions: sums, means, maxima, row argmax.

use crate::{Result, Tensor, TensorError};

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty tensor).
pub fn mean(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum(t) / t.len() as f32
    }
}

/// Maximum element (`None` for an empty tensor).
pub fn max(t: &Tensor) -> Option<f32> {
    t.as_slice().iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.max(v)),
    })
}

/// Per-row sums of a rank-2 tensor.
pub fn row_sums(t: &Tensor) -> Result<Vec<f32>> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "row_sums",
            expected: 2,
            actual: t.rank(),
        });
    }
    let cols = t.dims()[1];
    Ok(t.as_slice()
        .chunks(cols)
        .map(|row| row.iter().sum())
        .collect())
}

/// Per-column sums of a rank-2 tensor (bias gradients).
pub fn col_sums(t: &Tensor) -> Result<Vec<f32>> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "col_sums",
            expected: 2,
            actual: t.rank(),
        });
    }
    let (rows, cols) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(&t.as_slice()[r * cols..(r + 1) * cols]) {
            *o += v;
        }
    }
    Ok(out)
}

/// Index of the maximum element of each row of a rank-2 tensor.
///
/// Ties resolve to the lowest index, matching the behaviour expected when
/// decoding the classifier head's most likely bin.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "argmax_rows",
            expected: 2,
            actual: t.rank(),
        });
    }
    let cols = t.dims()[1];
    if cols == 0 {
        return Err(TensorError::InvalidArgument(
            "argmax over zero columns".into(),
        ));
    }
    Ok(t.as_slice()
        .chunks(cols)
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max_basics() {
        let t = Tensor::from_slice(&[1., 2., 3., 4.]);
        assert_eq!(sum(&t), 10.0);
        assert_eq!(mean(&t), 2.5);
        assert_eq!(max(&t), Some(4.0));
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros([0]);
        assert_eq!(sum(&t), 0.0);
        assert_eq!(mean(&t), 0.0);
        assert_eq!(max(&t), None);
    }

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(row_sums(&t).unwrap(), vec![6., 15.]);
        assert_eq!(col_sums(&t).unwrap(), vec![5., 7., 9.]);
    }

    #[test]
    fn argmax_ties_pick_first() {
        let t = Tensor::from_vec([2, 3], vec![1., 3., 3., 9., 2., 9.]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn rank_checks() {
        let t = Tensor::zeros([4]);
        assert!(row_sums(&t).is_err());
        assert!(argmax_rows(&t).is_err());
    }
}
