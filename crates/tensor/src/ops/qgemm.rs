//! Int8 quantized GEMM for the inference hot path.
//!
//! The serving fleet never trains: replica weights are frozen between
//! hot-swaps, so the f32 matmul can be replaced by an integer one built at
//! quantization time. The scheme is the standard asymmetric-activation /
//! symmetric-weight design:
//!
//! * **Weights** are quantized per-tensor to `i8` with a symmetric scale
//!   `sw = max|w| / 127` (zero-point 0), packed once into the kernel's
//!   pair-interleaved strip layout, and their per-column sums precomputed.
//! * **Activations** are quantized per-call to `u8` with an asymmetric
//!   `(scale sa, zero_point za)` covering `[min(x, 0), max(x, 0)]`, so the
//!   ubiquitous post-ReLU zero is exactly representable.
//!
//! With `qa = round(x/sa) + za` and `qw = round(w/sw)`, the f32 product
//! expands to
//!
//! ```text
//! y[i,j] = sa·sw · ( Σ_p qa[i,p]·qw[p,j]  −  za · Σ_p qw[p,j] )
//!        = sa·sw · ( S[i,j] − za·col_sum[j] )
//! ```
//!
//! so the kernel only computes the integer matrix `S` (widening
//! `u8×i8 → i32` accumulation); the zero-point correction folds into the
//! f32 write-back together with the bias and optional ReLU.
//!
//! ## Kernel layout
//!
//! Weights are packed like the f32 GEMM's B panels — strips of
//! [`NR`] (= 16) columns — but with **consecutive k-pairs interleaved**:
//! `packed[strip][k_pair][col][2]` holds `(qw[2t, j], qw[2t+1, j])` as
//! adjacent bytes, zero-padded on both the last pair (odd `k`) and the last
//! strip (ragged `n`). One 32-byte load then feeds AVX2's
//! `_mm256_cvtepi8_epi16` + `_mm256_madd_epi16` against an activation-pair
//! broadcast `(qa[2t] | qa[2t+1] << 16)`: each `madd` lane is
//! `qa0·qw0 + qa1·qw1` with both products ≤ 255·127 = 32 385 < 2¹⁵, so the
//! i16-pair multiply is **exact** — no `maddubs` saturation. The portable
//! kernel walks the identical packed layout with plain integer arithmetic;
//! because i32 addition is associative, every tier produces bit-identical
//! `S` (asserted by the `portable_and_simd_tiers_bit_identical` test).
//!
//! Accumulator headroom: each k-pair contributes ≤ 2·32 385 to an `i32`
//! lane, bounding `k` at ~33 000 — far above any layer here (checked by a
//! debug assertion in [`QuantizedWeights::quantize`]).
//!
//! Tier selection reuses [`kernel_tier`]: `Avx512`/`Avx2` run the AVX2
//! int8 kernel (no AVX-512 variant — without VNNI the ZMM form saves
//! nothing), `Autovec`/`Portable` run the portable kernel, so
//! `PRIONN_GEMM_KERNEL=portable` exercises the fallback end-to-end.

use super::gemm::{kernel_tier, KernelTier, MR, NR};

/// Per-call activation quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Dequantization step: `x ≈ (q − zero_point) · scale`.
    pub scale: f32,
    /// The u8 code representing real zero.
    pub zero_point: u8,
}

/// Quantize activations to `u8` into a caller-provided buffer (typically a
/// pooled `Scratch` buffer) and return the scale/zero-point used.
///
/// The quantization grid always covers 0 so post-ReLU zeros are exact; an
/// all-zero (or empty) input gets the identity grid `scale = 1, zp = 0`.
///
/// # Panics
/// When `out.len() != x.len()`.
pub fn quantize_activations_into(x: &[f32], out: &mut [u8]) -> ActQuant {
    assert_eq!(x.len(), out.len(), "activation buffer length mismatch");
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        out.fill(0);
        return ActQuant {
            scale: 1.0,
            zero_point: 0,
        };
    }
    let scale = (hi - lo) / 255.0;
    let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as u8;
    let zp = zero_point as f32;
    for (q, &v) in out.iter_mut().zip(x) {
        *q = (v / scale + zp).round().clamp(0.0, 255.0) as u8;
    }
    ActQuant { scale, zero_point }
}

/// Convenience allocating form of [`quantize_activations_into`].
pub fn quantize_activations(x: &[f32]) -> (Vec<u8>, ActQuant) {
    let mut out = vec![0u8; x.len()];
    let aq = quantize_activations_into(x, &mut out);
    (out, aq)
}

/// A weight matrix quantized to `i8` and packed for [`qgemm`].
///
/// Built once per hot-swap from the row-major f32 `[k, n]` weights (the
/// `Dense` orientation: `y = x · W`); serving then reuses it for every
/// batch until the next swap.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    /// `[n_strips][k_pairs][NR][2]` pair-interleaved i8 codes, zero-padded.
    packed: Vec<i8>,
    /// Per-column code sums `Σ_p qw[p, j]` for the zero-point correction.
    col_sums: Vec<i32>,
    /// Symmetric dequantization scale: `w ≈ qw · scale`.
    scale: f32,
    k: usize,
    n: usize,
}

impl QuantizedWeights {
    /// Quantize a row-major `[k, n]` f32 matrix. All-zero matrices get
    /// `scale = 1` (codes are all zero either way).
    ///
    /// # Panics
    /// When `w.len() != k * n`, `k == 0`, or `n == 0`.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> QuantizedWeights {
        assert_eq!(w.len(), k * n, "weight shape mismatch");
        assert!(k > 0 && n > 0, "degenerate weight shape {k}x{n}");
        debug_assert!(k < 33_000, "i32 accumulator headroom exceeded: k={k}");
        let max_abs = w.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let quant = |v: f32| (v / scale).round().clamp(-127.0, 127.0) as i8;

        let n_strips = n.div_ceil(NR);
        let k_pairs = k.div_ceil(2);
        let mut packed = vec![0i8; n_strips * k_pairs * NR * 2];
        let mut col_sums = vec![0i32; n];
        for (j, sum) in col_sums.iter_mut().enumerate() {
            let strip = j / NR;
            let col = j % NR;
            for t in 0..k_pairs {
                let base = ((strip * k_pairs + t) * NR + col) * 2;
                let q0 = quant(w[(2 * t) * n + j]);
                packed[base] = q0;
                *sum += q0 as i32;
                if 2 * t + 1 < k {
                    let q1 = quant(w[(2 * t + 1) * n + j]);
                    packed[base + 1] = q1;
                    *sum += q1 as i32;
                }
            }
        }
        QuantizedWeights {
            packed,
            col_sums,
            scale,
            k,
            n,
        }
    }

    /// Symmetric dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Input width (rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (columns of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed codes + column sums (diagnostics; ≈ ¼ of
    /// the f32 weights).
    pub fn packed_bytes(&self) -> usize {
        self.packed.len() + self.col_sums.len() * 4
    }
}

/// One `MRE × NR` integer tile over the packed pair layout, portable.
///
/// `qa` is the row-major `[m, k]` u8 activation matrix; `row0` selects the
/// tile's rows. Accumulates exact i32 sums into `acc`.
#[allow(clippy::too_many_arguments)]
fn qtile_portable(
    qa: &[u8],
    k: usize,
    row0: usize,
    mr_eff: usize,
    strip: &[i8],
    k_pairs: usize,
    acc: &mut [[i32; NR]; MR],
) {
    for t in 0..k_pairs {
        let wp = &strip[t * NR * 2..(t + 1) * NR * 2];
        for (r, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
            let arow = &qa[(row0 + r) * k..(row0 + r + 1) * k];
            let qa0 = arow[2 * t] as i32;
            let qa1 = if 2 * t + 1 < k {
                arow[2 * t + 1] as i32
            } else {
                0
            };
            for c in 0..NR {
                *unsafe { acc_row.get_unchecked_mut(c) } +=
                    qa0 * wp[c * 2] as i32 + qa1 * wp[c * 2 + 1] as i32;
            }
        }
    }
}

/// AVX2 variant of [`qtile_portable`]: one 32-byte weight load per k-pair
/// feeds `MRE` rows via `cvtepi8_epi16` + `madd_epi16` against per-row
/// activation-pair broadcasts — 12 resident i32 accumulator vectors at
/// `MRE = 6`, mirroring the f32 microkernel's register budget.
///
/// # Safety
/// Caller must ensure AVX2 is available, `row0 + MRE ≤ m`, and `strip`
/// holds `k_pairs` packed pair-groups.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qtile_avx2<const MRE: usize>(
    qa: &[u8],
    k: usize,
    row0: usize,
    strip: &[i8],
    k_pairs: usize,
    acc: &mut [[i32; NR]; MR],
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_si256(); MRE];
    let mut hi = [_mm256_setzero_si256(); MRE];
    let wp = strip.as_ptr();
    let ap = qa.as_ptr();
    for t in 0..k_pairs {
        let wbytes = _mm256_loadu_si256(wp.add(t * NR * 2) as *const __m256i);
        // Low 16 bytes: columns 0..7 (pair-interleaved); high: columns 8..15.
        let wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wbytes));
        let whi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wbytes, 1));
        for i in 0..MRE {
            let arow = ap.add((row0 + i) * k);
            let qa0 = *arow.add(2 * t) as u32;
            let qa1 = if 2 * t + 1 < k {
                *arow.add(2 * t + 1) as u32
            } else {
                0
            };
            let pair = _mm256_set1_epi32((qa0 | (qa1 << 16)) as i32);
            lo[i] = _mm256_add_epi32(lo[i], _mm256_madd_epi16(wlo, pair));
            hi[i] = _mm256_add_epi32(hi[i], _mm256_madd_epi16(whi, pair));
        }
    }
    for i in 0..MRE {
        _mm256_storeu_si256(acc[i].as_mut_ptr() as *mut __m256i, lo[i]);
        _mm256_storeu_si256(acc[i].as_mut_ptr().add(8) as *mut __m256i, hi[i]);
    }
}

/// Dequantize one integer tile into the f32 output with the zero-point
/// correction, bias, and optional ReLU fused.
#[allow(clippy::too_many_arguments)]
fn qwrite_back(
    out: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
    acc: &[[i32; NR]; MR],
    qw: &QuantizedWeights,
    aq: ActQuant,
    bias: Option<&[f32]>,
    relu: bool,
) {
    let dequant = aq.scale * qw.scale;
    let za = aq.zero_point as i32;
    for r in 0..mr_eff {
        let orow = &mut out[(row0 + r) * n + col0..(row0 + r) * n + col0 + nr_eff];
        for (c, o) in orow.iter_mut().enumerate() {
            let j = col0 + c;
            let mut v = dequant * (acc[r][c] - za * qw.col_sums[j]) as f32;
            if let Some(b) = bias {
                v += b[j];
            }
            *o = if relu { v.max(0.0) } else { v };
        }
    }
}

/// Quantized matmul: `out[m, n] = dequant(qa[m, k] · qw) (+ bias) (ReLU)`.
///
/// `qa` must be quantized with `aq` (see [`quantize_activations_into`]);
/// `out` is fully overwritten. The integer core dispatches on
/// [`kernel_tier`] but every tier computes the identical `S`, so results
/// are bit-for-bit reproducible across hosts and `PRIONN_GEMM_KERNEL`
/// settings.
///
/// # Panics
/// On mismatched buffer lengths or `bias` shorter than `n`.
pub fn qgemm(
    qa: &[u8],
    aq: ActQuant,
    m: usize,
    qw: &QuantizedWeights,
    bias: Option<&[f32]>,
    relu: bool,
    out: &mut [f32],
) {
    let (k, n) = (qw.k, qw.n);
    assert_eq!(qa.len(), m * k, "activation shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    if let Some(b) = bias {
        assert!(b.len() >= n, "bias shorter than n");
    }
    let n_strips = n.div_ceil(NR);
    let k_pairs = k.div_ceil(2);
    let strip_len = k_pairs * NR * 2;
    #[cfg(target_arch = "x86_64")]
    let use_simd = matches!(kernel_tier(), KernelTier::Avx512 | KernelTier::Avx2);
    #[cfg(not(target_arch = "x86_64"))]
    let use_simd = false;

    let mut row0 = 0usize;
    while row0 < m {
        let mr_eff = MR.min(m - row0);
        for s in 0..n_strips {
            let col0 = s * NR;
            let nr_eff = NR.min(n - col0);
            let strip = &qw.packed[s * strip_len..(s + 1) * strip_len];
            let mut acc = [[0i32; NR]; MR];
            if use_simd {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: tier check above guarantees AVX2; mr_eff rows are
                // in bounds by construction.
                unsafe {
                    match mr_eff {
                        6 => qtile_avx2::<6>(qa, k, row0, strip, k_pairs, &mut acc),
                        5 => qtile_avx2::<5>(qa, k, row0, strip, k_pairs, &mut acc),
                        4 => qtile_avx2::<4>(qa, k, row0, strip, k_pairs, &mut acc),
                        3 => qtile_avx2::<3>(qa, k, row0, strip, k_pairs, &mut acc),
                        2 => qtile_avx2::<2>(qa, k, row0, strip, k_pairs, &mut acc),
                        _ => qtile_avx2::<1>(qa, k, row0, strip, k_pairs, &mut acc),
                    }
                }
            } else {
                qtile_portable(qa, k, row0, mr_eff, strip, k_pairs, &mut acc);
            }
            qwrite_back(out, n, row0, col0, mr_eff, nr_eff, &acc, qw, aq, bias, relu);
        }
        row0 += mr_eff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm::force_kernel_tier;

    /// Deterministic pseudo-random f32s in [-range, range].
    fn randf(seed: u64, len: usize, range: f32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0) * range
            })
            .collect()
    }

    fn f32_reference(x: &[f32], w: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = x[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a * w[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn activation_round_trip_error_is_bounded_by_half_a_step() {
        for seed in 0..8u64 {
            let x = randf(seed, 301, 3.0);
            let (q, aq) = quantize_activations(&x);
            for (&v, &code) in x.iter().zip(&q) {
                let back = (code as f32 - aq.zero_point as f32) * aq.scale;
                assert!(
                    (v - back).abs() <= aq.scale * 0.5 + 1e-6,
                    "seed {seed}: {v} -> {back} (scale {})",
                    aq.scale
                );
            }
            // Real zero must be exactly representable.
            let zero_code = aq.zero_point;
            assert_eq!((zero_code as f32 - aq.zero_point as f32) * aq.scale, 0.0);
        }
    }

    #[test]
    fn weight_round_trip_error_is_bounded_by_half_a_step() {
        let (k, n) = (37, 29);
        let w = randf(99, k * n, 0.8);
        let qw = QuantizedWeights::quantize(&w, k, n);
        // Recover codes through a unit activation: x = e_p row picks out
        // row p of the dequantized weights.
        let sw = qw.scale();
        for (idx, &orig) in w.iter().enumerate() {
            let code = (orig / sw).round().clamp(-127.0, 127.0);
            assert!(
                (orig - code * sw).abs() <= sw * 0.5 + 1e-6,
                "w[{idx}] = {orig}"
            );
        }
    }

    #[test]
    fn all_zero_inputs_use_identity_grids() {
        let (q, aq) = quantize_activations(&[0.0; 16]);
        assert_eq!(aq.scale, 1.0);
        assert_eq!(aq.zero_point, 0);
        assert!(q.iter().all(|&c| c == 0));
        let qw = QuantizedWeights::quantize(&[0.0; 12], 3, 4);
        assert_eq!(qw.scale(), 1.0);
    }

    /// qgemm must track the f32 product to within the propagated
    /// quantization error on randomized shapes, including odd k, ragged n,
    /// and ragged row tails.
    #[test]
    fn qgemm_matches_f32_reference_within_quant_error() {
        let shapes = [
            (1usize, 16usize, 16usize),
            (6, 32, 48),
            (7, 33, 17),
            (13, 101, 50),
            (32, 64, 240),
            (5, 1, 3),
        ];
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let x = randf(si as u64 + 1, m * k, 2.0);
            let w = randf(si as u64 + 101, k * n, 0.5);
            let bias = randf(si as u64 + 201, n, 0.3);
            let expect = f32_reference(&x, &w, m, k, n);

            let qw = QuantizedWeights::quantize(&w, k, n);
            let (qa, aq) = quantize_activations(&x);
            let mut got = vec![0.0f32; m * n];
            qgemm(&qa, aq, m, &qw, Some(&bias), false, &mut got);

            // Error model: each of the k products carries at most
            // |a|·(sw/2) + |w|·(sa/2) + (sa/2)(sw/2) absolute error.
            let tol = k as f32
                * (2.0 * qw.scale() / 2.0 + 0.5 * aq.scale / 2.0 + 1.0)
                * f32::max(qw.scale(), aq.scale);
            let max_abs = expect.iter().fold(0.0f32, |a, &v| a.max(v.abs())).max(1.0);
            for (i, (&e, &g)) in expect.iter().zip(&got).enumerate() {
                let eb = e + bias[i % n];
                assert!(
                    (eb - g).abs() <= tol.max(max_abs * 0.02),
                    "shape {m}x{k}x{n} elem {i}: f32 {eb} vs int8 {g} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let (m, k, n) = (4usize, 20usize, 24usize);
        let x = randf(7, m * k, 1.0);
        let w = randf(8, k * n, 1.0);
        let qw = QuantizedWeights::quantize(&w, k, n);
        let (qa, aq) = quantize_activations(&x);
        let mut plain = vec![0.0f32; m * n];
        let mut relu = vec![0.0f32; m * n];
        qgemm(&qa, aq, m, &qw, None, false, &mut plain);
        qgemm(&qa, aq, m, &qw, None, true, &mut relu);
        assert!(plain.iter().any(|&v| v < 0.0), "test needs negatives");
        for (&p, &r) in plain.iter().zip(&relu) {
            assert_eq!(r, p.max(0.0));
        }
    }

    /// Integer accumulation is exact, so every dispatch tier must produce
    /// bit-identical output — the property that makes quantized serving
    /// reproducible across heterogeneous fleets.
    #[test]
    fn portable_and_simd_tiers_bit_identical() {
        use crate::ops::gemm::KernelTier;
        let (m, k, n) = (11usize, 53usize, 37usize);
        let x = randf(21, m * k, 1.5);
        let w = randf(22, k * n, 0.7);
        let bias = randf(23, n, 0.2);
        let qw = QuantizedWeights::quantize(&w, k, n);
        let (qa, aq) = quantize_activations(&x);
        let mut outputs = Vec::new();
        for tier in [
            KernelTier::Avx512,
            KernelTier::Avx2,
            KernelTier::Autovec,
            KernelTier::Portable,
        ] {
            force_kernel_tier(Some(tier));
            let mut out = vec![0.0f32; m * n];
            qgemm(&qa, aq, m, &qw, Some(&bias), true, &mut out);
            outputs.push((tier, out));
        }
        force_kernel_tier(None);
        let (_, first) = &outputs[0];
        for (tier, out) in &outputs[1..] {
            assert_eq!(out, first, "tier {tier:?} diverged");
        }
    }

    #[test]
    fn packed_bytes_is_about_a_quarter_of_f32() {
        let (k, n) = (128usize, 256usize);
        let qw = QuantizedWeights::quantize(&vec![0.5; k * n], k, n);
        let f32_bytes = k * n * 4;
        assert!(qw.packed_bytes() < f32_bytes / 2, "{}", qw.packed_bytes());
    }

    #[test]
    #[should_panic(expected = "activation shape mismatch")]
    fn qgemm_rejects_wrong_activation_length() {
        let qw = QuantizedWeights::quantize(&[0.5; 8], 2, 4);
        let mut out = vec![0.0; 4];
        qgemm(
            &[0u8; 3],
            ActQuant {
                scale: 1.0,
                zero_point: 0,
            },
            1,
            &qw,
            None,
            false,
            &mut out,
        );
    }
}
