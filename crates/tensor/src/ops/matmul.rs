//! Dense matrix multiplication, lowered onto the blocked GEMM core.
//!
//! Three variants cover everything backprop needs without materialising
//! transposes:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (gradient w.r.t. inputs)
//! * [`matmul_at_b`] — `C = Aᵀ · B` (gradient w.r.t. weights)
//!
//! plus fused forward-path epilogues [`matmul_bias`] / [`matmul_bias_relu`].
//! All of them are thin shape-checked wrappers around
//! [`gemm`](crate::ops::gemm::gemm): transposition happens at pack time, so
//! every variant runs the same cache-blocked kernel at the same speed.
//!
//! Each function comes in two flavours: a convenience form that uses a
//! thread-local [`Scratch`] (allocating the output), and a `_with` form
//! taking an explicit workspace so hot loops reuse pack buffers and pull
//! the output from the caller's pool.

use crate::ops::gemm::{self, Epilogue, Layout};
use crate::{Result, Scratch, Tensor, TensorError};
use std::cell::RefCell;

thread_local! {
    /// Fallback workspace for the convenience APIs. Hot paths should thread
    /// their own [`Scratch`] instead (worker threads spawned per rayon call
    /// see a fresh, empty workspace here).
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

fn with_local<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    LOCAL_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

fn check2(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

fn check_inner(op: &'static str, a: &Tensor, b: &Tensor, ka: usize, kb: usize) -> Result<()> {
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

fn check_bias(bias: &Tensor, n: usize) -> Result<()> {
    if bias.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: bias.len(),
        });
    }
    Ok(())
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_local(|s| matmul_with(s, a, b))
}

/// [`matmul`] drawing the output and pack buffers from `scratch`.
pub fn matmul_with(scratch: &mut Scratch, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2("matmul", a)?;
    let (kb, n) = check2("matmul", b)?;
    check_inner("matmul", a, b, ka, kb)?;
    let mut out = scratch.take(m * n);
    gemm::gemm_parallel(
        scratch,
        m,
        n,
        ka,
        a.as_slice(),
        Layout::RowMajor,
        b.as_slice(),
        Layout::RowMajor,
        &mut out,
        false,
        Epilogue::None,
    );
    Tensor::from_vec([m, n], out)
}

/// `C[m,n] = A[m,k] · Bᵀ` where `B` is `[n,k]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_local(|s| matmul_a_bt_with(s, a, b))
}

/// [`matmul_a_bt`] drawing the output and pack buffers from `scratch`.
pub fn matmul_a_bt_with(scratch: &mut Scratch, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2("matmul_a_bt", a)?;
    let (n, kb) = check2("matmul_a_bt", b)?;
    check_inner("matmul_a_bt", a, b, ka, kb)?;
    let mut out = scratch.take(m * n);
    gemm::gemm_parallel(
        scratch,
        m,
        n,
        ka,
        a.as_slice(),
        Layout::RowMajor,
        b.as_slice(),
        Layout::Transposed,
        &mut out,
        false,
        Epilogue::None,
    );
    Tensor::from_vec([m, n], out)
}

/// `C[k,n] = Aᵀ · B` where `A` is `[m,k]`, `B` is `[m,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_local(|s| matmul_at_b_with(s, a, b))
}

/// [`matmul_at_b`] drawing the output and pack buffers from `scratch`.
pub fn matmul_at_b_with(scratch: &mut Scratch, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ma, k) = check2("matmul_at_b", a)?;
    let (mb, n) = check2("matmul_at_b", b)?;
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = scratch.take(k * n);
    gemm::gemm_parallel(
        scratch,
        k,
        n,
        ma,
        a.as_slice(),
        Layout::Transposed,
        b.as_slice(),
        Layout::RowMajor,
        &mut out,
        false,
        Epilogue::None,
    );
    Tensor::from_vec([k, n], out)
}

/// `Aᵀ · B` written into an existing `[k,n]` tensor (no allocation), used
/// for weight gradients that overwrite their buffer every step.
pub fn matmul_at_b_into(
    scratch: &mut Scratch,
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
) -> Result<()> {
    let (ma, k) = check2("matmul_at_b", a)?;
    let (mb, n) = check2("matmul_at_b", b)?;
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    if out.dims() != [k, n] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: vec![k, n],
            rhs: out.dims().to_vec(),
        });
    }
    gemm::gemm_parallel(
        scratch,
        k,
        n,
        ma,
        a.as_slice(),
        Layout::Transposed,
        b.as_slice(),
        Layout::RowMajor,
        out.as_mut_slice(),
        false,
        Epilogue::None,
    );
    Ok(())
}

/// `C = A · B + bias` with the bias broadcast across rows (the Dense
/// forward pass), fused into the kernel's write-back.
pub fn matmul_bias(a: &Tensor, b: &Tensor, bias: &Tensor) -> Result<Tensor> {
    with_local(|s| matmul_bias_with(s, a, b, bias))
}

/// [`matmul_bias`] drawing the output and pack buffers from `scratch`.
pub fn matmul_bias_with(
    scratch: &mut Scratch,
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
) -> Result<Tensor> {
    matmul_bias_impl(scratch, a, b, bias, false)
}

/// `C = relu(A · B + bias)` — the fused Dense + ReLU forward epilogue.
pub fn matmul_bias_relu(a: &Tensor, b: &Tensor, bias: &Tensor) -> Result<Tensor> {
    with_local(|s| matmul_bias_relu_with(s, a, b, bias))
}

/// [`matmul_bias_relu`] drawing the output and pack buffers from `scratch`.
pub fn matmul_bias_relu_with(
    scratch: &mut Scratch,
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
) -> Result<Tensor> {
    matmul_bias_impl(scratch, a, b, bias, true)
}

fn matmul_bias_impl(
    scratch: &mut Scratch,
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
    relu: bool,
) -> Result<Tensor> {
    let (m, ka) = check2("matmul_bias", a)?;
    let (kb, n) = check2("matmul_bias", b)?;
    check_inner("matmul_bias", a, b, ka, kb)?;
    check_bias(bias, n)?;
    let mut out = scratch.take(m * n);
    let epi = if relu {
        Epilogue::BiasColRelu(bias.as_slice())
    } else {
        Epilogue::BiasCol(bias.as_slice())
    };
    gemm::gemm_parallel(
        scratch,
        m,
        n,
        ka,
        a.as_slice(),
        Layout::RowMajor,
        b.as_slice(),
        Layout::RowMajor,
        &mut out,
        false,
        epi,
    );
    Tensor::from_vec([m, n], out)
}

/// Naive reference kernels: straight triple loops with no blocking, packing
/// or skip branches. They define the semantics the blocked kernels are
/// tested against (`tests/gemm_parity.rs`) and serve as the bench baseline.
pub mod reference {
    use super::{check2, check_bias, check_inner};
    use crate::{Result, Tensor, TensorError};

    /// Naive `C = A · B`.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, ka) = check2("matmul", a)?;
        let (kb, n) = check2("matmul", b)?;
        check_inner("matmul", a, b, ka, kb)?;
        let (av, bv) = (a.as_slice(), b.as_slice());
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            for (p, &aip) in av[i * ka..(i + 1) * ka].iter().enumerate() {
                let b_row = &bv[p * n..(p + 1) * n];
                for (o, &bpn) in out_row.iter_mut().zip(b_row) {
                    *o += aip * bpn;
                }
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Naive `C = A · Bᵀ` with `B` stored `[n,k]`.
    pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, ka) = check2("matmul_a_bt", a)?;
        let (n, kb) = check2("matmul_a_bt", b)?;
        check_inner("matmul_a_bt", a, b, ka, kb)?;
        let (av, bv) = (a.as_slice(), b.as_slice());
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            let a_row = &av[i * ka..(i + 1) * ka];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &bv[j * ka..(j + 1) * ka];
                *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Naive `C = Aᵀ · B` with `A` stored `[m,k]`.
    pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (ma, k) = check2("matmul_at_b", a)?;
        let (mb, n) = check2("matmul_at_b", b)?;
        if ma != mb {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_at_b",
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
            });
        }
        let (av, bv) = (a.as_slice(), b.as_slice());
        let mut out = vec![0.0f32; k * n];
        for m_idx in 0..ma {
            let b_row = &bv[m_idx * n..(m_idx + 1) * n];
            for (i, out_row) in out.chunks_mut(n).enumerate() {
                let ami = av[m_idx * k + i];
                for (o, &bmn) in out_row.iter_mut().zip(b_row) {
                    *o += ami * bmn;
                }
            }
        }
        Tensor::from_vec([k, n], out)
    }

    /// Naive `C = A · B + bias` (bias broadcast across rows).
    pub fn matmul_bias(a: &Tensor, b: &Tensor, bias: &Tensor) -> Result<Tensor> {
        let mut y = matmul(a, b)?;
        check_bias(bias, y.dims()[1])?;
        let n = y.dims()[1];
        for (i, v) in y.as_mut_slice().iter_mut().enumerate() {
            *v += bias.as_slice()[i % n];
        }
        Ok(y)
    }

    /// Naive `C = relu(A · B + bias)`.
    pub fn matmul_bias_relu(a: &Tensor, b: &Tensor, bias: &Tensor) -> Result<Tensor> {
        let mut y = matmul_bias(a, b, bias)?;
        for v in y.as_mut_slice() {
            *v = v.max(0.0);
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: [usize; 2], v: &[f32]) -> Tensor {
        Tensor::from_vec(dims, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t([2, 2], &[1., 2., 3., 4.]);
        let i = t([2, 2], &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_rejects_rank1() {
        let a = Tensor::zeros([3]);
        let b = Tensor::zeros([3, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([4, 3], &[1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), via_t);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), via_t);
    }

    #[test]
    fn at_b_into_overwrites_existing_tensor() {
        let mut s = Scratch::new();
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let mut out = Tensor::full([2, 4], 99.0);
        matmul_at_b_into(&mut s, &a, &b, &mut out).unwrap();
        assert_eq!(out, matmul_at_b(&a, &b).unwrap());
        let mut wrong = Tensor::zeros([4, 2]);
        assert!(matmul_at_b_into(&mut s, &a, &b, &mut wrong).is_err());
    }

    #[test]
    fn bias_epilogue_broadcasts_across_rows() {
        let a = t([2, 2], &[1., 0., 0., 1.]);
        let b = t([2, 2], &[1., -2., 3., 4.]);
        let bias = Tensor::from_slice(&[10.0, -10.0]);
        let y = matmul_bias(&a, &b, &bias).unwrap();
        assert_eq!(y.as_slice(), &[11., -12., 13., -6.]);
        let yr = matmul_bias_relu(&a, &b, &bias).unwrap();
        assert_eq!(yr.as_slice(), &[11., 0., 13., 0.]);
    }

    #[test]
    fn bias_rejects_wrong_length() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([2, 2]);
        let bias = Tensor::zeros([3]);
        assert!(matmul_bias(&a, &b, &bias).is_err());
    }

    #[test]
    fn scratch_variant_reuses_buffers_across_calls() {
        let mut s = Scratch::new();
        let a = Tensor::full([8, 8], 0.5);
        let b = Tensor::full([8, 8], 2.0);
        let first = matmul_with(&mut s, &a, &b).unwrap();
        s.recycle_tensor(first);
        let grows_after_warmup = s.stats().grows;
        for _ in 0..3 {
            let y = matmul_with(&mut s, &a, &b).unwrap();
            s.recycle_tensor(y);
        }
        assert_eq!(s.stats().grows, grows_after_warmup);
    }

    #[test]
    fn large_parallel_path_agrees_with_serial_reference() {
        // 200x120x90 on a deterministic pattern against a naive triple loop.
        let (m, k, n) = (200usize, 120usize, 90usize);
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 13) as f32 - 6.0)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 11) as f32 - 5.0)
            .collect();
        let a = Tensor::from_vec([m, k], a_data.clone()).unwrap();
        let b = Tensor::from_vec([k, n], b_data.clone()).unwrap();
        let c = matmul(&a, &b).unwrap();
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 3), (17, 83)] {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_data[i * k + kk] * b_data[kk * n + j];
            }
            assert!((c.at2(i, j) - acc).abs() < 1e-3, "at ({i},{j})");
        }
    }
}
