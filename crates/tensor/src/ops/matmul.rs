//! Parallel dense matrix multiplication.
//!
//! Three variants cover everything backprop needs without materialising
//! transposes:
//!
//! * [`matmul`]      — `C = A · B`
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (gradient w.r.t. inputs)
//! * [`matmul_at_b`] — `C = Aᵀ · B` (gradient w.r.t. weights)
//!
//! Rows of the output are distributed across rayon workers; the inner loops
//! run over contiguous memory so the compiler can vectorise them.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Matrix sizes below which threading overhead outweighs the win.
const PAR_THRESHOLD: usize = 64 * 64;

fn check2(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2("matmul", a)?;
    let (kb, n) = check2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    let body = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = &av[row_idx * ka..(row_idx + 1) * ka];
        // k-outer loop keeps the B row contiguous: out_row += a_ik * B[k,:].
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bv[k * n..(k + 1) * n];
            for (o, &bkn) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkn;
            }
        }
    };
    if m * n * ka >= PAR_THRESHOLD * 8 {
        out.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        out.chunks_mut(n).enumerate().for_each(body);
    }
    Tensor::from_vec([m, n], out)
}

/// `C[m,n] = A[m,k] · Bᵀ` where `B` is `[n,k]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check2("matmul_a_bt", a)?;
    let (n, kb) = check2("matmul_a_bt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    let body = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = &av[row_idx * ka..(row_idx + 1) * ka];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bv[j * ka..(j + 1) * ka];
            // Dot product of two contiguous rows.
            *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
        }
    };
    if m * n * ka >= PAR_THRESHOLD * 8 {
        out.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        out.chunks_mut(n).enumerate().for_each(body);
    }
    Tensor::from_vec([m, n], out)
}

/// `C[k,n] = Aᵀ · B` where `A` is `[m,k]`, `B` is `[m,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ma, k) = check2("matmul_at_b", a)?;
    let (mb, n) = check2("matmul_at_b", b)?;
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; k * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    let body = |(i, out_row): (usize, &mut [f32])| {
        // out_row (length n) = sum_m A[m,i] * B[m,:]
        for m_idx in 0..ma {
            let ami = av[m_idx * k + i];
            if ami == 0.0 {
                continue;
            }
            let b_row = &bv[m_idx * n..(m_idx + 1) * n];
            for (o, &bmn) in out_row.iter_mut().zip(b_row) {
                *o += ami * bmn;
            }
        }
    };
    if ma * n * k >= PAR_THRESHOLD * 8 {
        out.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        out.chunks_mut(n).enumerate().for_each(body);
    }
    Tensor::from_vec([k, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: [usize; 2], v: &[f32]) -> Tensor {
        Tensor::from_vec(dims, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t([2, 2], &[1., 2., 3., 4.]);
        let i = t([2, 2], &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_rejects_rank1() {
        let a = Tensor::zeros([3]);
        let b = Tensor::zeros([3, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([4, 3], &[1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        let via_t = matmul(&a, &b.transpose2().unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), via_t);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let via_t = matmul(&a.transpose2().unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), via_t);
    }

    #[test]
    fn large_parallel_path_agrees_with_serial_reference() {
        // 200x120x90 exceeds the parallel threshold; check against a naive
        // triple loop on a deterministic pattern.
        let (m, k, n) = (200usize, 120usize, 90usize);
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 13) as f32 - 6.0)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 11) as f32 - 5.0)
            .collect();
        let a = Tensor::from_vec([m, k], a_data.clone()).unwrap();
        let b = Tensor::from_vec([k, n], b_data.clone()).unwrap();
        let c = matmul(&a, &b).unwrap();
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 3), (17, 83)] {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_data[i * k + kk] * b_data[kk * n + j];
            }
            assert!((c.at2(i, j) - acc).abs() < 1e-3, "at ({i},{j})");
        }
    }
}
