//! Tensor kernels: matmul, elementwise arithmetic, reductions, im2col.

pub mod elementwise;
pub mod gemm;
pub mod im2col;
pub mod matmul;
pub mod qgemm;
pub mod reduce;

pub use elementwise::{add, add_assign, axpy, hadamard, scale, sub};
pub use gemm::{Epilogue, GemmStats, GemmWorkspace, KernelTier, Layout};
pub use im2col::{col2im, col2im_into, im2col, im2col_into, Conv2dGeom};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_with, matmul_at_b, matmul_at_b_into, matmul_at_b_with,
    matmul_bias, matmul_bias_relu, matmul_bias_relu_with, matmul_bias_with, matmul_with,
};
pub use qgemm::{
    qgemm, quantize_activations, quantize_activations_into, ActQuant, QuantizedWeights,
};
pub use reduce::{argmax_rows, col_sums, max, mean, row_sums, sum};
