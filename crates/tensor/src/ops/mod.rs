//! Tensor kernels: matmul, elementwise arithmetic, reductions, im2col.

pub mod elementwise;
pub mod im2col;
pub mod matmul;
pub mod reduce;

pub use elementwise::{add, add_assign, axpy, hadamard, scale, sub};
pub use im2col::{col2im, im2col, Conv2dGeom};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b};
pub use reduce::{argmax_rows, col_sums, max, mean, row_sums, sum};
