//! Shape-checked elementwise arithmetic.

use crate::{Result, Tensor, TensorError};

fn check_same(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// `a + b`, elementwise.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("add", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x + y)
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// `a - b`, elementwise.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("sub", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x - y)
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Hadamard (elementwise) product `a ⊙ b`.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("hadamard", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// `a *= s`, in place.
pub fn scale(a: &mut Tensor, s: f32) {
    for v in a.as_mut_slice() {
        *v *= s;
    }
}

/// `a += b`, in place.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    check_same("add_assign", a, b)?;
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
    Ok(())
}

/// `y += alpha * x`, in place — the SGD/momentum workhorse.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    check_same("axpy", y, x)?;
    for (yv, &xv) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yv += alpha * xv;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[0.5, -1.0, 2.0]);
        let s = add(&a, &b).unwrap();
        assert_eq!(sub(&s, &b).unwrap(), a);
    }

    #[test]
    fn hadamard_multiplies() {
        let a = t(&[2., 3.]);
        let b = t(&[4., -1.]);
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[8., -3.]);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(add(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
    }

    #[test]
    fn scale_in_place() {
        let mut a = t(&[1., -2.]);
        scale(&mut a, 3.0);
        assert_eq!(a.as_slice(), &[3., -6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(&[1., 1., 1.]);
        let mut y = t(&[0., 1., 2.]);
        axpy(0.5, &x, &mut y).unwrap();
        assert_eq!(y.as_slice(), &[0.5, 1.5, 2.5]);
    }
}
