//! Cache-blocked, register-tiled f32 GEMM — the single kernel every matmul
//! variant in this crate lowers onto.
//!
//! The structure is the classical three-level blocking of Goto & van de
//! Geijn, specialised to the shapes PRIONN trains on:
//!
//! ```text
//! for j0 in 0..n step NC            // B column panel  (fits L3 / whole n)
//!   for p0 in 0..k step KC          // K block         (packed B fits L2)
//!     pack B[p0.., j0..]  -> bpack  // [kc x NR] strips, NR-contiguous
//!     for i0 in 0..m step MC        // A row panel     (packed A fits L1/L2)
//!       pack A[i0.., p0..] -> apack // [kc x MR] strips, MR-contiguous
//!       for each (MR x NR) tile: microkernel over kc, write back to C
//! ```
//!
//! * The 6×16 microkernel keeps a 6×16 accumulator block in registers
//!   (12 YMM registers on AVX2) and streams packed A/B strips through it.
//! * Transposed operands are handled at *pack time* ([`Layout`]): packing
//!   already walks every element once, so transposition is free and all
//!   three `matmul` variants share this one core.
//! * Bias and bias+ReLU epilogues ([`Epilogue`]) are fused into the final
//!   write-back of the last K block, saving one full pass over C for the
//!   Dense and Conv2d forward paths.
//! * Pack buffers live in a caller-provided [`GemmWorkspace`] so steady-state
//!   training never allocates; [`GemmStats`] records FLOPs and pack time for
//!   the telemetry gauges.
//!
//! Dispatch ([`KernelTier`], selected at runtime via
//! `is_x86_feature_detected!` and overridable with the `PRIONN_GEMM_KERNEL`
//! environment variable or [`force_kernel_tier`]):
//!
//! * **avx512** — an explicit AVX-512F microkernel that fuses two adjacent
//!   packed B strips into one 6×32 register tile (12 ZMM accumulators, one
//!   `_mm512_fmadd_ps` per strip per row per k-step).
//! * **avx2** — an explicit AVX2+FMA microkernel written with `std::arch`
//!   intrinsics (`_mm256_fmadd_ps` over 12 YMM accumulators).
//! * **autovec** — the packed block loop compiled under
//!   `#[target_feature(enable = "avx2,fma")]` and left to LLVM's
//!   auto-vectoriser; this was the only AVX2 path before the explicit
//!   microkernels landed and is kept as the bench comparison baseline.
//! * **portable** — the same block loop compiled for the baseline target;
//!   runs on any CPU and is the reference the SIMD tiers are tested against.
//!
//! Both explicit tiers also run a skip-packing direct path for small
//! problems (n ≤ 96) where pack overhead used to lose to the naive kernel.

use crate::scratch::Scratch;
use rayon::prelude::*;
use std::time::Instant;

/// Microkernel tile rows (accumulator height).
pub const MR: usize = 6;
/// Microkernel tile columns (accumulator width; two 8-lane AVX2 vectors).
pub const NR: usize = 16;
/// Row-panel height (`MC × KC` packed A block, a multiple of [`MR`]).
pub const MC: usize = 72;
/// K-block depth (`KC × NR` packed B strips stream from L2).
pub const KC: usize = 256;
/// Column-panel width (a multiple of [`NR`]; covers every PRIONN layer).
pub const NC: usize = 4096;

/// Parallelising a GEMM below this many FLOPs costs more in thread spawn
/// overhead than the split recovers.
const PAR_FLOP_THRESHOLD: f64 = 8e6;

/// How a logical `[rows, cols]` operand is laid out in its backing slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Stored row-major as `[rows, cols]`.
    RowMajor,
    /// Stored row-major as `[cols, rows]` — the logical matrix is the
    /// transpose of the stored one. Packing performs the transposition.
    Transposed,
}

/// An operation fused into the final write-back of C.
///
/// Bias slices are indexed by *global* output row/column, so they must have
/// at least `m` (row variants) or `n` (column variants) elements.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain `C = A·B` (or `C += A·B` in accumulate mode).
    None,
    /// `C[i,j] += bias[j]` — per-output-feature bias (Dense forward).
    BiasCol(&'a [f32]),
    /// `C[i,j] = max(C[i,j] + bias[j], 0)` — fused Dense + ReLU.
    BiasColRelu(&'a [f32]),
    /// `C[i,j] += bias[i]` — per-output-channel bias (Conv2d forward).
    BiasRow(&'a [f32]),
    /// `C[i,j] = max(C[i,j] + bias[i], 0)` — fused Conv2d + ReLU.
    BiasRowRelu(&'a [f32]),
}

impl<'a> Epilogue<'a> {
    /// Rebase row-indexed biases for a C chunk starting at `row0` (used when
    /// row panels are distributed across workers).
    fn offset_rows(self, row0: usize) -> Self {
        match self {
            Epilogue::BiasRow(b) => Epilogue::BiasRow(&b[row0..]),
            Epilogue::BiasRowRelu(b) => Epilogue::BiasRowRelu(&b[row0..]),
            other => other,
        }
    }

    fn check(&self, m: usize, n: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::BiasCol(b) | Epilogue::BiasColRelu(b) => {
                assert!(b.len() >= n, "gemm: column bias shorter than n");
            }
            Epilogue::BiasRow(b) | Epilogue::BiasRowRelu(b) => {
                assert!(b.len() >= m, "gemm: row bias shorter than m");
            }
        }
    }
}

/// Per-workspace kernel counters, aggregated by [`Scratch::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct GemmStats {
    /// Number of GEMM calls that ran (or packed) through this workspace.
    pub calls: u64,
    /// Total floating-point operations issued (`2·m·n·k` per call).
    pub flops: f64,
    /// Wall time spent packing A/B panels.
    pub pack_seconds: f64,
    /// Total wall time of the GEMM calls driven from this workspace.
    pub total_seconds: f64,
    /// Times a pack buffer had to grow (zero once shapes have been seen).
    pub pack_grows: u64,
}

impl GemmStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &GemmStats) {
        self.calls += other.calls;
        self.flops += other.flops;
        self.pack_seconds += other.pack_seconds;
        self.total_seconds += other.total_seconds;
        self.pack_grows += other.pack_grows;
    }
}

/// Reusable pack buffers for one GEMM execution stream.
///
/// Buffers grow to the high-water mark of the shapes seen and are then
/// reused verbatim, so a training loop with fixed layer shapes performs
/// zero pack-buffer allocations after the first step.
#[derive(Debug, Default)]
pub struct GemmWorkspace {
    pack_a: Vec<f32>,
    pack_b: Vec<f32>,
    /// Kernel counters for this workspace.
    pub stats: GemmStats,
}

impl GemmWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        GemmWorkspace::default()
    }
}

/// FLOPs of one `m×n×k` GEMM (multiply + add per inner-product term).
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Resize a pack buffer, counting reallocations.
fn ensure_len(buf: &mut Vec<f32>, len: usize, grows: &mut u64) {
    if buf.capacity() < len {
        *grows += 1;
    }
    buf.resize(len, 0.0);
}

/// Pack an `mc × kc` block of A (rows `i0..`, depth `p0..`) into MR-wide
/// strips: `dst[strip][p][r]`, zero-padding the ragged last strip.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    i0: usize,
    p0: usize,
    mc: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let base = s * kc * MR;
        let row0 = i0 + s * MR;
        let mr_eff = MR.min(i0 + mc - row0);
        match layout {
            Layout::RowMajor => {
                // Walk each source row contiguously and scatter into the
                // MR-strided strip: sequential reads + store-buffer-friendly
                // fixed-stride writes beat the strided-read transpose.
                let strip = &mut dst[base..base + kc * MR];
                if mr_eff < MR {
                    strip.fill(0.0);
                }
                for r in 0..mr_eff {
                    let src = &a[(row0 + r) * k + p0..(row0 + r) * k + p0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        strip[p * MR + r] = v;
                    }
                }
            }
            Layout::Transposed => {
                for p in 0..kc {
                    let out = &mut dst[base + p * MR..base + p * MR + MR];
                    // Stored [k, m]: logical A[i, p] lives at a[p*m + i].
                    let src = &a[(p0 + p) * m + row0..(p0 + p) * m + row0 + mr_eff];
                    out[..mr_eff].copy_from_slice(src);
                    for o in out.iter_mut().skip(mr_eff) {
                        *o = 0.0;
                    }
                }
            }
        }
    }
}

/// Pack a `kc × nc` block of B (depth `p0..`, columns `j0..`) into NR-wide
/// strips: `dst[strip][p][c]`, zero-padding the ragged last strip.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(NR);
    for t in 0..strips {
        let base = t * kc * NR;
        let col0 = j0 + t * NR;
        let nr_eff = NR.min(j0 + nc - col0);
        for p in 0..kc {
            let out = &mut dst[base + p * NR..base + p * NR + NR];
            match layout {
                Layout::RowMajor => {
                    let src = &b[(p0 + p) * n + col0..(p0 + p) * n + col0 + nr_eff];
                    out[..nr_eff].copy_from_slice(src);
                }
                Layout::Transposed => {
                    // Stored [n, k]: logical B[p, j] lives at b[j*k + p].
                    for (c, o) in out.iter_mut().enumerate().take(nr_eff) {
                        *o = b[(col0 + c) * k + (p0 + p)];
                    }
                }
            }
            for o in out.iter_mut().skip(nr_eff) {
                *o = 0.0;
            }
        }
    }
}

/// Rank-1-update microkernel: accumulate a full `MR × NR` tile over `kc`.
///
/// The `mul + add` in the inner loop contracts to FMA under the AVX2+FMA
/// instantiation; the accumulator array maps onto 12 YMM registers.
#[inline(always)]
fn microkernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let av: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = b[p * NR..p * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
}

/// Explicit AVX2+FMA microkernel: a full `MR × NR` tile over `kc` using
/// `std::arch` intrinsics.
///
/// Packed strips are zero-padded, so the kernel always sees complete 6×16
/// tiles: per k-step it issues two 8-lane B loads, six A broadcasts and
/// twelve `_mm256_fmadd_ps` into 12 resident YMM accumulators (15 of the 16
/// architectural YMM registers live). Ragged edges and epilogues are handled
/// by [`write_back`] on the spilled accumulator tile.
///
/// # Safety
/// The caller must have verified AVX2+FMA support, and `a`/`b` must hold at
/// least `kc * MR` / `kc * NR` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * NR);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut lo = [_mm256_setzero_ps(); MR];
    let mut hi = [_mm256_setzero_ps(); MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for i in 0..MR {
            let ai = _mm256_broadcast_ss(&*ap.add(p * MR + i));
            lo[i] = _mm256_fmadd_ps(ai, b0, lo[i]);
            hi[i] = _mm256_fmadd_ps(ai, b1, hi[i]);
        }
    }
    for i in 0..MR {
        _mm256_storeu_ps(acc[i].as_mut_ptr(), lo[i]);
        _mm256_storeu_ps(acc[i].as_mut_ptr().add(8), hi[i]);
    }
}

/// Explicit AVX-512F microkernel over a *pair* of adjacent packed B strips:
/// one `MR × 2·NR` register tile (6×32), accumulated in 12 ZMM registers.
///
/// Each `NR = 16`-float strip is exactly one ZMM vector, so a strip pair
/// costs two loads plus six broadcasts per k-step and feeds twelve
/// `_mm512_fmadd_ps` — the same FMA-chain count as the AVX2 kernel but with
/// double the lanes. The packed-B format is unchanged; the pair is just two
/// consecutive strips of the existing layout.
///
/// # Safety
/// The caller must have verified AVX-512F support; `a` must hold at least
/// `kc * MR` elements and `b0`/`b1` at least `kc * NR` elements each.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_pair(
    kc: usize,
    a: &[f32],
    b0: &[f32],
    b1: &[f32],
    acc0: &mut [[f32; NR]; MR],
    acc1: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b0.len() >= kc * NR && b1.len() >= kc * NR);
    let ap = a.as_ptr();
    let b0p = b0.as_ptr();
    let b1p = b1.as_ptr();
    let mut c0 = [_mm512_setzero_ps(); MR];
    let mut c1 = [_mm512_setzero_ps(); MR];
    for p in 0..kc {
        let v0 = _mm512_loadu_ps(b0p.add(p * NR));
        let v1 = _mm512_loadu_ps(b1p.add(p * NR));
        for i in 0..MR {
            let ai = _mm512_set1_ps(*ap.add(p * MR + i));
            c0[i] = _mm512_fmadd_ps(ai, v0, c0[i]);
            c1[i] = _mm512_fmadd_ps(ai, v1, c1[i]);
        }
    }
    for i in 0..MR {
        _mm512_storeu_ps(acc0[i].as_mut_ptr(), c0[i]);
        _mm512_storeu_ps(acc1[i].as_mut_ptr(), c1[i]);
    }
}

/// Write one accumulator tile back to C, masking the ragged edges and
/// applying the fused epilogue when this is the last K block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn write_back(
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
    acc: &[[f32; NR]; MR],
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    for (r, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let off = (row0 + r) * ldc + col0;
        let crow = &mut c[off..off + nr_eff];
        for (cc, out) in crow.iter_mut().enumerate() {
            let mut v = acc_row[cc];
            if !overwrite {
                v += *out;
            }
            v = match epi {
                Epilogue::None => v,
                Epilogue::BiasCol(bias) => v + bias[col0 + cc],
                Epilogue::BiasColRelu(bias) => (v + bias[col0 + cc]).max(0.0),
                Epilogue::BiasRow(bias) => v + bias[row0 + r],
                Epilogue::BiasRowRelu(bias) => (v + bias[row0 + r]).max(0.0),
            };
            *out = v;
        }
    }
}

/// Vectorised write-back for a full-width (`nr_eff == NR`) accumulator
/// tile: two 8-lane vectors per row carry the accumulate/bias/ReLU fusion,
/// replacing the scalar read-modify-write loop on the hot path.
///
/// # Safety
/// AVX2+FMA must be available and the tile must span full `NR` columns
/// inside `c`'s bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn write_back_avx2(
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    acc: &[[f32; NR]; MR],
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    use std::arch::x86_64::*;
    let zero = _mm256_setzero_ps();
    for (r, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let cptr = c.as_mut_ptr().add((row0 + r) * ldc + col0);
        let mut v0 = _mm256_loadu_ps(acc_row.as_ptr());
        let mut v1 = _mm256_loadu_ps(acc_row.as_ptr().add(8));
        if !overwrite {
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(cptr));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(cptr.add(8)));
        }
        match epi {
            Epilogue::None => {}
            Epilogue::BiasCol(bias) => {
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(bias.as_ptr().add(col0)));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(bias.as_ptr().add(col0 + 8)));
            }
            Epilogue::BiasColRelu(bias) => {
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(bias.as_ptr().add(col0)));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(bias.as_ptr().add(col0 + 8)));
                v0 = _mm256_max_ps(v0, zero);
                v1 = _mm256_max_ps(v1, zero);
            }
            Epilogue::BiasRow(bias) => {
                let br = _mm256_set1_ps(bias[row0 + r]);
                v0 = _mm256_add_ps(v0, br);
                v1 = _mm256_add_ps(v1, br);
            }
            Epilogue::BiasRowRelu(bias) => {
                let br = _mm256_set1_ps(bias[row0 + r]);
                v0 = _mm256_max_ps(_mm256_add_ps(v0, br), zero);
                v1 = _mm256_max_ps(_mm256_add_ps(v1, br), zero);
            }
        }
        _mm256_storeu_ps(cptr, v0);
        _mm256_storeu_ps(cptr.add(8), v1);
    }
}

/// Tile write-back used from the explicit-SIMD block loops: vector path for
/// full-width tiles, scalar [`write_back`] for ragged column tails.
///
/// # Safety
/// AVX2+FMA must be available; bounds as for [`write_back`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn write_back_simd(
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
    acc: &[[f32; NR]; MR],
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    if nr_eff == NR {
        write_back_avx2(c, ldc, row0, col0, mr_eff, acc, overwrite, epi);
    } else {
        write_back(c, ldc, row0, col0, mr_eff, nr_eff, acc, overwrite, epi);
    }
}

/// Run every `MR × NR` tile of one packed `(mc × kc) · (kc × nc)` block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn block_loop_impl(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(NR);
    for t in 0..n_strips {
        let bstrip = &bpack[t * kc * NR..(t + 1) * kc * NR];
        let col0 = j0 + t * NR;
        let nr_eff = NR.min(j0 + nc - col0);
        for s in 0..m_strips {
            let astrip = &apack[s * kc * MR..(s + 1) * kc * MR];
            let row0 = i0 + s * MR;
            let mr_eff = MR.min(i0 + mc - row0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, astrip, bstrip, &mut acc);
            write_back(c, ldc, row0, col0, mr_eff, nr_eff, &acc, overwrite, epi);
        }
    }
}

/// Auto-vectorised AVX2+FMA instantiation of the block loop (monomorphised
/// through the `#[inline(always)]` helpers above, so the portable microkernel
/// compiles to FMAs). Retained as the [`KernelTier::Autovec`] comparison
/// baseline for the explicit-intrinsics tier.
///
/// # Safety
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn block_loop_avx2(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    block_loop_impl(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi);
}

/// Explicit-intrinsics instantiation of the block loop: every full tile runs
/// [`microkernel_avx2`]; write-back (with edge masking and fused epilogues)
/// is shared with the portable path and inlines under the same features.
///
/// # Safety
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn block_loop_simd(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(NR);
    for t in 0..n_strips {
        let bstrip = &bpack[t * kc * NR..(t + 1) * kc * NR];
        let col0 = j0 + t * NR;
        let nr_eff = NR.min(j0 + nc - col0);
        for s in 0..m_strips {
            let astrip = &apack[s * kc * MR..(s + 1) * kc * MR];
            let row0 = i0 + s * MR;
            let mr_eff = MR.min(i0 + mc - row0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel_avx2(kc, astrip, bstrip, &mut acc);
            write_back_simd(c, ldc, row0, col0, mr_eff, nr_eff, &acc, overwrite, epi);
        }
    }
}

/// AVX-512 instantiation of the block loop: strip pairs run the 6×32
/// [`microkernel_avx512_pair`]; a ragged final strip falls back to the 6×16
/// AVX2 microkernel (AVX-512F implies AVX2+FMA on every shipping CPU, and
/// the dispatcher checks all three features anyway).
///
/// # Safety
/// The caller must have verified AVX-512F, AVX2 and FMA support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn block_loop_avx512(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    let m_strips = mc.div_ceil(MR);
    let n_strips = nc.div_ceil(NR);
    let mut t = 0usize;
    while t < n_strips {
        let col0 = j0 + t * NR;
        if t + 1 < n_strips {
            // Strip t is full width (a later strip exists); only strip t+1
            // can be ragged.
            let b0 = &bpack[t * kc * NR..(t + 1) * kc * NR];
            let b1 = &bpack[(t + 1) * kc * NR..(t + 2) * kc * NR];
            let col1 = col0 + NR;
            let nr1 = NR.min(j0 + nc - col1);
            for s in 0..m_strips {
                let astrip = &apack[s * kc * MR..(s + 1) * kc * MR];
                let row0 = i0 + s * MR;
                let mr_eff = MR.min(i0 + mc - row0);
                let mut acc0 = [[0.0f32; NR]; MR];
                let mut acc1 = [[0.0f32; NR]; MR];
                microkernel_avx512_pair(kc, astrip, b0, b1, &mut acc0, &mut acc1);
                write_back_avx2(c, ldc, row0, col0, mr_eff, &acc0, overwrite, epi);
                write_back_simd(c, ldc, row0, col1, mr_eff, nr1, &acc1, overwrite, epi);
            }
            t += 2;
        } else {
            let bstrip = &bpack[t * kc * NR..(t + 1) * kc * NR];
            let nr_eff = NR.min(j0 + nc - col0);
            for s in 0..m_strips {
                let astrip = &apack[s * kc * MR..(s + 1) * kc * MR];
                let row0 = i0 + s * MR;
                let mr_eff = MR.min(i0 + mc - row0);
                let mut acc = [[0.0f32; NR]; MR];
                microkernel_avx2(kc, astrip, bstrip, &mut acc);
                write_back_simd(c, ldc, row0, col0, mr_eff, nr_eff, &acc, overwrite, epi);
            }
            t += 1;
        }
    }
}

/// True when the AVX2+FMA block loops may be used (checked once per process).
#[cfg(target_arch = "x86_64")]
fn avx2_fma_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

/// True when the AVX-512 block loop may be used (checked once per process).
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("fma")
    })
}

/// Which GEMM inner-kernel implementation the dispatcher runs.
///
/// The effective tier is chosen per call from, in priority order: a
/// programmatic [`force_kernel_tier`] override, the `PRIONN_GEMM_KERNEL`
/// environment variable (`avx512` / `avx2` / `autovec` / `portable`, read
/// once), then runtime CPU-feature detection (best available tier).
/// Requesting a tier the CPU cannot run silently degrades to the best
/// supported one — forcing a tier can never make a correct program crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Explicit AVX-512F microkernel over B-strip pairs (6×32 ZMM tile).
    Avx512,
    /// Explicit AVX2+FMA `std::arch` microkernel (6×16 YMM tile).
    Avx2,
    /// Portable block loop compiled under `target_feature(avx2,fma)` and
    /// auto-vectorised by LLVM (the pre-intrinsics kernel).
    Autovec,
    /// Portable block loop compiled for the baseline target; runs anywhere.
    Portable,
}

impl KernelTier {
    /// Stable lower-case name (`avx512`, `avx2`, `autovec`, `portable`) —
    /// the same spelling `PRIONN_GEMM_KERNEL` accepts and the bench JSON
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Avx512 => "avx512",
            KernelTier::Avx2 => "avx2",
            KernelTier::Autovec => "autovec",
            KernelTier::Portable => "portable",
        }
    }
}

/// Process-wide tier override set by [`force_kernel_tier`].
/// 0 = none, 1 = avx512, 2 = avx2, 3 = autovec, 4 = portable.
static TIER_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Force every subsequent GEMM call in this process onto one kernel tier
/// (or restore automatic selection with `None`).
///
/// Intended for benches and parity tests that compare tiers inside one
/// process; the override still degrades to a supported tier on CPUs missing
/// the requested features. All tiers produce results within the
/// parity-suite tolerance of each other, so flipping this concurrently with
/// running GEMMs affects performance only, never correctness.
pub fn force_kernel_tier(tier: Option<KernelTier>) {
    let v = match tier {
        None => 0,
        Some(KernelTier::Avx512) => 1,
        Some(KernelTier::Avx2) => 2,
        Some(KernelTier::Autovec) => 3,
        Some(KernelTier::Portable) => 4,
    };
    TIER_OVERRIDE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The tier requested by `PRIONN_GEMM_KERNEL`, if any (read once).
fn env_tier() -> Option<KernelTier> {
    use std::sync::OnceLock;
    static ENV: OnceLock<Option<KernelTier>> = OnceLock::new();
    *ENV.get_or_init(
        || match std::env::var("PRIONN_GEMM_KERNEL").ok()?.as_str() {
            "avx512" => Some(KernelTier::Avx512),
            "avx2" => Some(KernelTier::Avx2),
            "autovec" => Some(KernelTier::Autovec),
            "portable" => Some(KernelTier::Portable),
            other => {
                eprintln!(
                    "PRIONN_GEMM_KERNEL: unknown tier {other:?} ignored \
                     (expected avx512, avx2, autovec or portable)"
                );
                None
            }
        },
    )
}

/// The kernel tier the dispatcher will actually run on this CPU.
pub fn kernel_tier() -> KernelTier {
    let requested = match TIER_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => Some(KernelTier::Avx512),
        2 => Some(KernelTier::Avx2),
        3 => Some(KernelTier::Autovec),
        4 => Some(KernelTier::Portable),
        _ => env_tier(),
    };
    #[cfg(target_arch = "x86_64")]
    {
        let best = if avx512_available() {
            KernelTier::Avx512
        } else if avx2_fma_available() {
            KernelTier::Avx2
        } else {
            KernelTier::Portable
        };
        match requested {
            None => best,
            // Degrade an unsupported request to the best supported tier;
            // autovec additionally needs AVX2 (it is the AVX2-compiled
            // portable loop).
            Some(KernelTier::Avx512) if !avx512_available() => best,
            Some(KernelTier::Avx2 | KernelTier::Autovec) if !avx2_fma_available() => {
                KernelTier::Portable
            }
            Some(t) => t,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = requested;
        KernelTier::Portable
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn run_block_loop(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    overwrite: bool,
    epi: Epilogue<'_>,
) {
    #[cfg(target_arch = "x86_64")]
    match kernel_tier() {
        // SAFETY: kernel_tier only returns a SIMD tier after runtime
        // feature detection succeeded.
        KernelTier::Avx512 => unsafe {
            block_loop_avx512(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi);
        },
        KernelTier::Avx2 => unsafe {
            block_loop_simd(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi);
        },
        KernelTier::Autovec => unsafe {
            block_loop_avx2(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi);
        },
        KernelTier::Portable => {
            block_loop_impl(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    block_loop_impl(apack, bpack, c, ldc, i0, j0, mc, nc, kc, overwrite, epi);
}

/// Upper bound on `n` for the skip-packing small path.
pub const SMALL_N_MAX: usize = 96;
/// Upper bound on `m` for the skip-packing small path.
pub const SMALL_M_MAX: usize = 2 * MC;
/// Upper bound on `k` for the skip-packing small path.
pub const SMALL_K_MAX: usize = 2 * KC;

/// True when [`gemm`] will run the skip-packing direct path: the whole
/// problem fits the microkernel's register tiling without cache blocking
/// (`m/n/k` small), B is row-major so its tile columns can be loaded
/// straight from the operand, and the tier supports it (the autovec tier
/// reproduces the pre-intrinsics kernel exactly, so it never short-cuts).
///
/// Packing exists to make the streamed panels contiguous in L1/L2; at these
/// sizes the operands already fit in cache and the pack traffic is pure
/// overhead — it is what made 64³ matmuls lose to the naive kernel.
pub fn small_path_applies(m: usize, n: usize, k: usize, lb: Layout) -> bool {
    lb == Layout::RowMajor
        && k > 0
        && m <= SMALL_M_MAX
        && n <= SMALL_N_MAX
        && k <= SMALL_K_MAX
        && kernel_tier() != KernelTier::Autovec
}

/// Accumulate one `mr_eff × nr_eff` tile straight from the unpacked
/// operands (no A/B packing). Shared by the portable small loop and the
/// ragged edges of the SIMD small loop.
///
/// `a_base` points at logical `A[row0, 0]`; consecutive tile rows are
/// `row_stride` apart and consecutive k steps `k_stride` apart, which
/// encodes both [`Layout`]s of A.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn small_tile_scalar(
    k: usize,
    n: usize,
    a_base: &[f32],
    row_stride: usize,
    k_stride: usize,
    b_col: &[f32],
    mr_eff: usize,
    nr_eff: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for p in 0..k {
        let brow = &b_col[p * n..p * n + nr_eff];
        for (r, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
            let av = a_base[r * row_stride + p * k_stride];
            for (j, &bv) in brow.iter().enumerate() {
                acc_row[j] += av * bv;
            }
        }
    }
}

/// A-addressing for the small path: `(row_stride, k_stride, base offset of
/// logical A[row0, 0])`.
#[inline(always)]
fn small_a_strides(la: Layout, m: usize, k: usize, row0: usize) -> (usize, usize, usize) {
    match la {
        Layout::RowMajor => (k, 1, row0 * k),
        Layout::Transposed => (1, m, row0),
    }
}

/// Portable skip-packing loop over all `MR × NR` tiles of C.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn small_loop_impl(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    for row0 in (0..m).step_by(MR) {
        let mr_eff = MR.min(m - row0);
        let (row_stride, k_stride, a_off) = small_a_strides(la, m, k, row0);
        for col0 in (0..n).step_by(NR) {
            let nr_eff = NR.min(n - col0);
            let mut acc = [[0.0f32; NR]; MR];
            small_tile_scalar(
                k,
                n,
                &a[a_off..],
                row_stride,
                k_stride,
                &b[col0..],
                mr_eff,
                nr_eff,
                &mut acc,
            );
            write_back(c, n, row0, col0, mr_eff, nr_eff, &acc, !accumulate, epi);
        }
    }
}

/// Explicit AVX2+FMA tile for the small path: `MRE` full rows × 16 columns
/// accumulated directly from the unpacked operands. `MRE` is const so the
/// accumulators stay in registers for every ragged row count.
///
/// # Safety
/// AVX2+FMA must be available; `a_base` must cover `MRE` rows over `k`
/// steps with the given strides and `b` must cover `k` rows of `n` floats
/// starting at the tile's first column.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn small_tile_avx2<const MRE: usize>(
    k: usize,
    n: usize,
    a_base: *const f32,
    row_stride: usize,
    k_stride: usize,
    b_col: *const f32,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_ps(); MRE];
    let mut hi = [_mm256_setzero_ps(); MRE];
    for p in 0..k {
        let bp = b_col.add(p * n);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for r in 0..MRE {
            let ai = _mm256_broadcast_ss(&*a_base.add(r * row_stride + p * k_stride));
            lo[r] = _mm256_fmadd_ps(ai, b0, lo[r]);
            hi[r] = _mm256_fmadd_ps(ai, b1, hi[r]);
        }
    }
    for r in 0..MRE {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), hi[r]);
    }
}

/// SIMD skip-packing loop: full-width tiles run [`small_tile_avx2`]
/// (specialised per ragged row count); column tails fall back to the scalar
/// tile. Write-back/epilogues are shared with every other path.
///
/// # Safety
/// The caller must have verified that the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn small_loop_avx2(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    for row0 in (0..m).step_by(MR) {
        let mr_eff = MR.min(m - row0);
        let (row_stride, k_stride, a_off) = small_a_strides(la, m, k, row0);
        let a_base = a.as_ptr().add(a_off);
        for col0 in (0..n).step_by(NR) {
            let nr_eff = NR.min(n - col0);
            let mut acc = [[0.0f32; NR]; MR];
            if nr_eff == NR {
                let b_col = b.as_ptr().add(col0);
                match mr_eff {
                    6 => small_tile_avx2::<6>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                    5 => small_tile_avx2::<5>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                    4 => small_tile_avx2::<4>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                    3 => small_tile_avx2::<3>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                    2 => small_tile_avx2::<2>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                    _ => small_tile_avx2::<1>(k, n, a_base, row_stride, k_stride, b_col, &mut acc),
                }
            } else {
                small_tile_scalar(
                    k,
                    n,
                    std::slice::from_raw_parts(
                        a_base,
                        (mr_eff - 1) * row_stride + (k - 1) * k_stride + 1,
                    ),
                    row_stride,
                    k_stride,
                    &b[col0..],
                    mr_eff,
                    nr_eff,
                    &mut acc,
                );
            }
            write_back_simd(c, n, row0, col0, mr_eff, nr_eff, &acc, !accumulate, epi);
        }
    }
}

/// Dispatch the skip-packing small path onto the effective kernel tier.
#[allow(clippy::too_many_arguments)]
fn run_small_loop(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    #[cfg(target_arch = "x86_64")]
    if matches!(kernel_tier(), KernelTier::Avx512 | KernelTier::Avx2) {
        // SAFETY: both explicit tiers imply AVX2+FMA per feature detection.
        // The small path always uses the AVX2 tile: at n <= 96 the problem
        // is load-latency bound, not FMA-width bound, so wider vectors buy
        // nothing.
        unsafe {
            small_loop_avx2(m, n, k, a, la, b, c, accumulate, epi);
        }
        return;
    }
    small_loop_impl(m, n, k, a, la, b, c, accumulate, epi);
}

fn check_operands(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    epi: &Epilogue<'_>,
) {
    assert!(a.len() >= m * k, "gemm: A slice shorter than m*k");
    assert!(b.len() >= k * n, "gemm: B slice shorter than k*n");
    assert!(c.len() >= m * n, "gemm: C slice shorter than m*n");
    epi.check(m, n);
}

/// Apply only the degenerate `k == 0` semantics: zero (or keep) C, then run
/// the epilogue.
fn gemm_k0(m: usize, n: usize, c: &mut [f32], accumulate: bool, epi: Epilogue<'_>) {
    if !accumulate {
        c[..m * n].fill(0.0);
    }
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        for (j, v) in row.iter_mut().enumerate() {
            *v = match epi {
                Epilogue::None => *v,
                Epilogue::BiasCol(bias) => *v + bias[j],
                Epilogue::BiasColRelu(bias) => (*v + bias[j]).max(0.0),
                Epilogue::BiasRow(bias) => *v + bias[i],
                Epilogue::BiasRowRelu(bias) => (*v + bias[i]).max(0.0),
            };
        }
    }
}

/// Serial blocked GEMM: `C = A·B` (or `C += A·B` with `accumulate`), with an
/// optional fused epilogue applied to the final value of C.
///
/// `a` is a logical `[m, k]` matrix and `b` a logical `[k, n]` matrix, each
/// interpreted through its [`Layout`]; `c` is `[m, n]` row-major. Slices may
/// be longer than required; the excess is ignored.
///
/// # Panics
/// Panics when a slice is shorter than its logical shape requires.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ws: &mut GemmWorkspace,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    lb: Layout,
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    check_operands(m, n, k, a, b, c, &epi);
    if m == 0 || n == 0 {
        return;
    }
    let t0 = Instant::now();
    if k == 0 {
        gemm_k0(m, n, c, accumulate, epi);
    } else if small_path_applies(m, n, k, lb) {
        run_small_loop(m, n, k, a, la, b, c, accumulate, epi);
    } else {
        for j0 in (0..n).step_by(NC) {
            let nc = NC.min(n - j0);
            for p0 in (0..k).step_by(KC) {
                let kc = KC.min(k - p0);
                let first = p0 == 0;
                let last = p0 + kc == k;
                let tp = Instant::now();
                ensure_len(
                    &mut ws.pack_b,
                    nc.div_ceil(NR) * kc * NR,
                    &mut ws.stats.pack_grows,
                );
                pack_b(&mut ws.pack_b, b, lb, k, n, p0, j0, kc, nc);
                ws.stats.pack_seconds += tp.elapsed().as_secs_f64();
                for i0 in (0..m).step_by(MC) {
                    let mc = MC.min(m - i0);
                    let tp = Instant::now();
                    ensure_len(
                        &mut ws.pack_a,
                        mc.div_ceil(MR) * kc * MR,
                        &mut ws.stats.pack_grows,
                    );
                    pack_a(&mut ws.pack_a, a, la, m, k, i0, p0, mc, kc);
                    ws.stats.pack_seconds += tp.elapsed().as_secs_f64();
                    let epi_here = if last { epi } else { Epilogue::None };
                    run_block_loop(
                        &ws.pack_a,
                        &ws.pack_b,
                        c,
                        n,
                        i0,
                        j0,
                        mc,
                        nc,
                        kc,
                        first && !accumulate,
                        epi_here,
                    );
                }
            }
        }
    }
    ws.stats.calls += 1;
    ws.stats.flops += gemm_flops(m, n, k);
    ws.stats.total_seconds += t0.elapsed().as_secs_f64();
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Blocked GEMM that distributes row panels across rayon workers when the
/// problem is large enough (and runs [`gemm`] serially otherwise).
///
/// Each worker packs A panels into its own [`GemmWorkspace`] from `scratch`;
/// the B panel is packed once and shared read-only. The parallel path
/// requires `n <= NC` (one column panel) — wider problems fall back to the
/// serial kernel, which handles any size.
#[allow(clippy::too_many_arguments)]
pub fn gemm_parallel(
    scratch: &mut Scratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    lb: Layout,
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    let panels = m.div_ceil(MC);
    let groups = hardware_threads().min(panels);
    if groups <= 1 || n > NC || k == 0 || gemm_flops(m, n, k) < PAR_FLOP_THRESHOLD {
        gemm(
            scratch.gemm_mut(),
            m,
            n,
            k,
            a,
            la,
            b,
            lb,
            c,
            accumulate,
            epi,
        );
        return;
    }
    gemm_with_groups(scratch, groups, m, n, k, a, la, b, lb, c, accumulate, epi);
}

/// [`gemm_parallel`] with an explicit worker-group count (exposed so tests
/// can exercise the split path on any machine).
///
/// # Panics
/// Panics when `n > NC`, `k == 0`, `groups == 0`, or a slice is too short.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_groups(
    scratch: &mut Scratch,
    groups: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    b: &[f32],
    lb: Layout,
    c: &mut [f32],
    accumulate: bool,
    epi: Epilogue<'_>,
) {
    assert!(groups > 0, "gemm: zero worker groups");
    assert!(
        n <= NC && k > 0,
        "gemm: grouped path needs n <= NC and k > 0"
    );
    check_operands(m, n, k, a, b, c, &epi);
    if m == 0 || n == 0 {
        return;
    }
    let panels = m.div_ceil(MC);
    let per_group = panels.div_ceil(groups);
    let (main, workers) = scratch.gemm_workspaces(groups);
    let t0 = Instant::now();
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        let first = p0 == 0;
        let last = p0 + kc == k;
        let tp = Instant::now();
        ensure_len(
            &mut main.pack_b,
            n.div_ceil(NR) * kc * NR,
            &mut main.stats.pack_grows,
        );
        pack_b(&mut main.pack_b, b, lb, k, n, p0, 0, kc, n);
        main.stats.pack_seconds += tp.elapsed().as_secs_f64();
        let bpack: &[f32] = &main.pack_b;

        // Carve C into per-group row chunks (contiguous because n <= NC
        // means a single column panel spans the full row).
        let mut items: Vec<(usize, usize, &mut [f32], &mut GemmWorkspace)> =
            Vec::with_capacity(groups);
        let mut rest: &mut [f32] = &mut c[..m * n];
        let mut row = 0usize;
        for ws in workers.iter_mut() {
            if row == m {
                break;
            }
            let rows = (per_group * MC).min(m - row);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            items.push((row, rows, chunk, ws));
            row += rows;
            rest = tail;
        }
        let epi_here = if last { epi } else { Epilogue::None };
        items.into_par_iter().for_each(|(row0, rows, cchunk, ws)| {
            let epi_local = epi_here.offset_rows(row0);
            for ii in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ii);
                let tp = Instant::now();
                ensure_len(
                    &mut ws.pack_a,
                    mc.div_ceil(MR) * kc * MR,
                    &mut ws.stats.pack_grows,
                );
                pack_a(&mut ws.pack_a, a, la, m, k, row0 + ii, p0, mc, kc);
                ws.stats.pack_seconds += tp.elapsed().as_secs_f64();
                run_block_loop(
                    &ws.pack_a,
                    bpack,
                    cchunk,
                    n,
                    ii,
                    0,
                    mc,
                    n,
                    kc,
                    first && !accumulate,
                    epi_local,
                );
            }
        });
    }
    main.stats.calls += 1;
    main.stats.flops += gemm_flops(m, n, k);
    main.stats.total_seconds += t0.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic values keep f32 accumulation error tiny.
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 17) as f32 / 8.0
                    - 1.0
            })
            .collect()
    }

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += aip * b[p * n + j];
                }
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        for (idx, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                "element {idx}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_across_tail_shapes() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 1),
            (MC + 5, NR * 3 - 2, 97),
            (3, 200, 33),
            (1, 960, 128), // predict-shaped
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            let mut ws = GemmWorkspace::new();
            gemm(
                &mut ws,
                m,
                n,
                k,
                &a,
                Layout::RowMajor,
                &b,
                Layout::RowMajor,
                &mut c,
                false,
                Epilogue::None,
            );
            assert_close(&c, &naive(m, n, k, &a, &b));
        }
    }

    #[test]
    fn transposed_layouts_match_explicit_transposes() {
        let (m, n, k) = (13usize, 29usize, 21usize);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let want = naive(m, n, k, &a, &b);
        // A stored transposed as [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        // B stored transposed as [n, k].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut ws = GemmWorkspace::new();
        let mut c = vec![0.0f32; m * n];
        gemm(
            &mut ws,
            m,
            n,
            k,
            &at,
            Layout::Transposed,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::None,
        );
        assert_close(&c, &want);
        c.fill(7.0);
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &bt,
            Layout::Transposed,
            &mut c,
            false,
            Epilogue::None,
        );
        assert_close(&c, &want);
    }

    #[test]
    fn accumulate_adds_onto_existing_c() {
        let (m, n, k) = (9usize, 17usize, 40usize);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let base = fill(m * n, 7);
        let mut c = base.clone();
        let mut ws = GemmWorkspace::new();
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            true,
            Epilogue::None,
        );
        let want: Vec<f32> = naive(m, n, k, &a, &b)
            .iter()
            .zip(&base)
            .map(|(x, y)| x + y)
            .collect();
        assert_close(&c, &want);
    }

    #[test]
    fn epilogues_apply_bias_and_relu_once() {
        let (m, n, k) = (7usize, 19usize, KC + 3); // spans two K blocks
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let bias_col = fill(n, 10);
        let bias_row = fill(m, 11);
        let plain = naive(m, n, k, &a, &b);
        let mut ws = GemmWorkspace::new();

        let mut c = vec![0.0f32; m * n];
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::BiasColRelu(&bias_col),
        );
        let want: Vec<f32> = plain
            .iter()
            .enumerate()
            .map(|(i, v)| (v + bias_col[i % n]).max(0.0))
            .collect();
        assert_close(&c, &want);

        let mut c = vec![0.0f32; m * n];
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::BiasRow(&bias_row),
        );
        let want: Vec<f32> = plain
            .iter()
            .enumerate()
            .map(|(i, v)| v + bias_row[i / n])
            .collect();
        assert_close(&c, &want);
    }

    #[test]
    fn k0_zeroes_or_keeps_c_and_applies_bias() {
        let mut ws = GemmWorkspace::new();
        let mut c = vec![3.0f32; 6];
        let bias = [1.0f32, -2.0, 0.5];
        gemm(
            &mut ws,
            2,
            3,
            0,
            &[],
            Layout::RowMajor,
            &[],
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::BiasCol(&bias),
        );
        assert_eq!(c, vec![1.0, -2.0, 0.5, 1.0, -2.0, 0.5]);
    }

    #[test]
    fn small_path_matches_naive_for_both_a_layouts() {
        // Shapes inside the skip-packing envelope (n <= SMALL_N_MAX),
        // including ragged tiles and the 64^3 size that used to regress.
        for &(m, n, k) in &[
            (64usize, 64usize, 64usize),
            (1, 96, 200),
            (7, 13, 5),
            (SMALL_M_MAX, SMALL_N_MAX, 31),
            (50, 17, SMALL_K_MAX),
        ] {
            assert!(small_path_applies(m, n, k, Layout::RowMajor));
            let a = fill(m * k, 21);
            let b = fill(k * n, 22);
            let bias = fill(n, 23);
            let want: Vec<f32> = naive(m, n, k, &a, &b)
                .iter()
                .enumerate()
                .map(|(i, v)| (v + bias[i % n]).max(0.0))
                .collect();
            let mut at = vec![0.0f32; m * k];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut ws = GemmWorkspace::new();
            for (operand, layout) in [(&a, Layout::RowMajor), (&at, Layout::Transposed)] {
                let mut c = vec![0.0f32; m * n];
                gemm(
                    &mut ws,
                    m,
                    n,
                    k,
                    operand,
                    layout,
                    &b,
                    Layout::RowMajor,
                    &mut c,
                    false,
                    Epilogue::BiasColRelu(&bias),
                );
                assert_close(&c, &want);
            }
            // The small path packs nothing, so the workspace buffers never
            // grow.
            assert_eq!(
                ws.stats.pack_grows, 0,
                "{m}x{n}x{k} packed despite small path"
            );
        }
    }

    #[test]
    fn grouped_split_matches_serial() {
        let (m, n, k) = (MC * 2 + 11, 130usize, KC + 17);
        let a = fill(m * k, 12);
        let b = fill(k * n, 13);
        let bias = fill(m, 14);
        let mut serial = vec![0.0f32; m * n];
        let mut ws = GemmWorkspace::new();
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut serial,
            false,
            Epilogue::BiasRowRelu(&bias),
        );
        for groups in [1usize, 2, 3, 7] {
            let mut scratch = Scratch::new();
            let mut c = vec![0.0f32; m * n];
            gemm_with_groups(
                &mut scratch,
                groups,
                m,
                n,
                k,
                &a,
                Layout::RowMajor,
                &b,
                Layout::RowMajor,
                &mut c,
                false,
                Epilogue::BiasRowRelu(&bias),
            );
            assert_close(&c, &serial);
        }
    }

    #[test]
    fn stats_record_flops_and_pack_time() {
        let mut ws = GemmWorkspace::new();
        // n > SMALL_N_MAX so the call runs the packed block loop rather
        // than the skip-packing small path.
        let (m, n, k) = (64usize, 128, 64);
        let a = fill(m * k, 15);
        let b = fill(k * n, 16);
        let mut c = vec![0.0f32; m * n];
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::None,
        );
        assert_eq!(ws.stats.calls, 1);
        assert_eq!(ws.stats.flops, gemm_flops(m, n, k));
        assert!(ws.stats.total_seconds > 0.0);
        assert!(ws.stats.pack_seconds <= ws.stats.total_seconds);
        assert_eq!(ws.stats.pack_grows, 2); // one grow per pack buffer
        let before = ws.stats.pack_grows;
        gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::None,
        );
        assert_eq!(ws.stats.pack_grows, before, "steady state must not grow");
    }
}
