//! Parity suite: the blocked GEMM (all three matmul variants plus the fused
//! bias/ReLU epilogues) must match the naive reference kernels to within
//! 1e-4 relative error on every shape, including tile-boundary tails and
//! `m = 1` predict-shaped calls. CI fails if this suite is skipped.

use prionn_tensor::ops::gemm::{self, Epilogue, Layout};
use prionn_tensor::ops::matmul::reference;
use prionn_tensor::{ops, Scratch, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Assert elementwise `|a - b| <= 1e-4 * max(1, |b|)`.
fn assert_close(actual: &[f32], expect: &[f32], what: &str) {
    assert_eq!(actual.len(), expect.len(), "{what}: length mismatch");
    for (i, (&a, &e)) in actual.iter().zip(expect).enumerate() {
        let tol = 1e-4 * e.abs().max(1.0);
        assert!(
            (a - e).abs() <= tol,
            "{what}: elem {i}: blocked {a} vs reference {e} (tol {tol})"
        );
    }
}

fn rand_tensor(rng: &mut ChaCha8Rng, r: usize, c: usize) -> Tensor {
    prionn_tensor::init::uniform([r, c], -1.0, 1.0, rng)
}

/// Shapes covering the blocking structure: MR=6/NR=16 tile multiples, ragged
/// tails in every dimension, k spanning multiple KC=256 blocks, and m=1
/// single-row predict calls (the `PrionnService` hot shape).
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (6, 16, 8),    // exactly one microkernel tile
        (12, 32, 256), // tile multiples, one full KC block
        (7, 17, 9),    // ragged in every dimension
        (1, 960, 128), // m=1 predict-shaped (paper's 960 runtime bins)
        (1, 1, 1),     // degenerate
        (5, 3, 300),   // k spans two KC blocks with a tail
        (64, 64, 64),  // square, even
        (73, 49, 513), // ragged m/n, three KC blocks
        (96, 8, 32),   // more rows than cols
        (2, 200, 17),  // wide and shallow
    ]
}

#[test]
fn matmul_variants_match_reference_across_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB10C);
    for (m, n, k) in shapes() {
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, k, n);
        assert_close(
            ops::matmul(&a, &b).unwrap().as_slice(),
            reference::matmul(&a, &b).unwrap().as_slice(),
            &format!("matmul {m}x{n}x{k}"),
        );

        let bt = rand_tensor(&mut rng, n, k);
        assert_close(
            ops::matmul_a_bt(&a, &bt).unwrap().as_slice(),
            reference::matmul_a_bt(&a, &bt).unwrap().as_slice(),
            &format!("matmul_a_bt {m}x{n}x{k}"),
        );

        let at = rand_tensor(&mut rng, k, m);
        assert_close(
            ops::matmul_at_b(&at, &b).unwrap().as_slice(),
            reference::matmul_at_b(&at, &b).unwrap().as_slice(),
            &format!("matmul_at_b {m}x{n}x{k}"),
        );
    }
}

#[test]
fn fused_bias_epilogues_match_reference_across_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF00D);
    for (m, n, k) in shapes() {
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, k, n);
        let bias = prionn_tensor::init::uniform([n], -1.0, 1.0, &mut rng);
        assert_close(
            ops::matmul_bias(&a, &b, &bias).unwrap().as_slice(),
            reference::matmul_bias(&a, &b, &bias).unwrap().as_slice(),
            &format!("matmul_bias {m}x{n}x{k}"),
        );
        let relu = ops::matmul_bias_relu(&a, &b, &bias).unwrap();
        assert_close(
            relu.as_slice(),
            reference::matmul_bias_relu(&a, &b, &bias)
                .unwrap()
                .as_slice(),
            &format!("matmul_bias_relu {m}x{n}x{k}"),
        );
        assert!(
            relu.as_slice().iter().all(|&v| v >= 0.0),
            "relu epilogue produced a negative at {m}x{n}x{k}"
        );
    }
}

#[test]
fn randomized_shapes_match_reference() {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    for round in 0..40 {
        let m = rng.gen_range(1..80);
        let n = rng.gen_range(1..120);
        let k = rng.gen_range(1..400);
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, k, n);
        assert_close(
            ops::matmul(&a, &b).unwrap().as_slice(),
            reference::matmul(&a, &b).unwrap().as_slice(),
            &format!("random round {round}: {m}x{n}x{k}"),
        );
    }
}

/// Dispatch-fallback sweep: every kernel tier — forced in turn via
/// `force_kernel_tier` — must match the reference on shapes that cover
/// both the packed path and the skip-packing small path. Tiers the host
/// cannot run degrade gracefully and exercise whatever tier dispatch
/// lands on, so this test is meaningful on any x86-64 (and on other
/// architectures, where every forced tier degrades to portable/autovec).
#[test]
fn every_kernel_tier_matches_reference() {
    use prionn_tensor::ops::gemm::KernelTier;
    let mut rng = ChaCha8Rng::seed_from_u64(0x71E5);
    for tier in [
        KernelTier::Avx512,
        KernelTier::Avx2,
        KernelTier::Autovec,
        KernelTier::Portable,
    ] {
        gemm::force_kernel_tier(Some(tier));
        let effective = gemm::kernel_tier();
        for (m, n, k) in shapes() {
            let a = rand_tensor(&mut rng, m, k);
            let b = rand_tensor(&mut rng, k, n);
            let bias = prionn_tensor::init::uniform([n], -1.0, 1.0, &mut rng);
            let what = |op: &str| {
                format!(
                    "tier {} (effective {}) {op} {m}x{n}x{k}",
                    tier.name(),
                    effective.name()
                )
            };
            assert_close(
                ops::matmul(&a, &b).unwrap().as_slice(),
                reference::matmul(&a, &b).unwrap().as_slice(),
                &what("matmul"),
            );
            assert_close(
                ops::matmul_bias_relu(&a, &b, &bias).unwrap().as_slice(),
                reference::matmul_bias_relu(&a, &b, &bias)
                    .unwrap()
                    .as_slice(),
                &what("matmul_bias_relu"),
            );
        }
    }
    gemm::force_kernel_tier(None);
}

#[test]
fn grouped_parallel_path_matches_serial() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A97);
    for groups in [2usize, 3, 5] {
        for (m, n, k) in [(200, 48, 96), (73, 17, 300), (6, 16, 8)] {
            let a = rand_tensor(&mut rng, m, k);
            let b = rand_tensor(&mut rng, k, n);
            let bias = prionn_tensor::init::uniform([n], -1.0, 1.0, &mut rng);
            let mut scratch = Scratch::new();
            let mut c = vec![0.0f32; m * n];
            gemm::gemm_with_groups(
                &mut scratch,
                groups,
                m,
                n,
                k,
                a.as_slice(),
                Layout::RowMajor,
                b.as_slice(),
                Layout::RowMajor,
                &mut c,
                false,
                Epilogue::BiasCol(bias.as_slice()),
            );
            assert_close(
                &c,
                reference::matmul_bias(&a, &b, &bias).unwrap().as_slice(),
                &format!("groups={groups} {m}x{n}x{k}"),
            );
        }
    }
}

#[test]
fn accumulate_adds_onto_existing_output() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xACC);
    let (m, n, k) = (19, 23, 310);
    let a = rand_tensor(&mut rng, m, k);
    let b = rand_tensor(&mut rng, k, n);
    let seed: Vec<f32> = (0..m * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let mut c = seed.clone();
    let mut scratch = Scratch::new();
    gemm::gemm(
        scratch.gemm_mut(),
        m,
        n,
        k,
        a.as_slice(),
        Layout::RowMajor,
        b.as_slice(),
        Layout::RowMajor,
        &mut c,
        true,
        Epilogue::None,
    );
    let base = reference::matmul(&a, &b).unwrap();
    let expect: Vec<f32> = base
        .as_slice()
        .iter()
        .zip(&seed)
        .map(|(&p, &s)| p + s)
        .collect();
    assert_close(&c, &expect, "accumulate 19x23x310");
}
