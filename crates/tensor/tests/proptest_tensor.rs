//! Property-based tests for the tensor kernels.

use prionn_tensor::ops::{self, Conv2dGeom};
use prionn_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec([rows, cols], v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(3, 5),
        c in tensor_strategy(5, 2),
    ) {
        let left = ops::matmul(&ops::matmul(&a, &b).unwrap(), &c).unwrap();
        let right = ops::matmul(&a, &ops::matmul(&b, &c).unwrap()).unwrap();
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1.0, "assoc mismatch {l} vs {r}");
        }
    }

    // A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 3),
        c in tensor_strategy(4, 3),
    ) {
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &ops::matmul(&a, &b).unwrap(),
            &ops::matmul(&a, &c).unwrap(),
        ).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 0.5);
        }
    }

    // matmul_a_bt and matmul_at_b agree with explicit transposes.
    #[test]
    fn transposed_matmul_variants_agree(
        a in tensor_strategy(5, 4),
        b in tensor_strategy(6, 4),
    ) {
        let direct = ops::matmul_a_bt(&a, &b).unwrap();
        let explicit = ops::matmul(&a, &b.transpose2().unwrap()).unwrap();
        prop_assert_eq!(direct.dims(), explicit.dims());
        for (l, r) in direct.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((l - r).abs() < 1e-2);
        }
    }

    // Transposing twice is the identity.
    #[test]
    fn transpose_is_involution(a in tensor_strategy(7, 3)) {
        let tt = a.transpose2().unwrap().transpose2().unwrap();
        prop_assert_eq!(tt, a);
    }

    // sum(A + B) == sum(A) + sum(B).
    #[test]
    fn sum_is_linear(a in tensor_strategy(6, 6), b in tensor_strategy(6, 6)) {
        let s = ops::sum(&ops::add(&a, &b).unwrap());
        prop_assert!((s - (ops::sum(&a) + ops::sum(&b))).abs() < 0.1);
    }

    // Row sums and column sums total to the same grand sum.
    #[test]
    fn row_and_col_sums_agree(a in tensor_strategy(5, 8)) {
        let rows: f32 = ops::row_sums(&a).unwrap().iter().sum();
        let cols: f32 = ops::col_sums(&a).unwrap().iter().sum();
        prop_assert!((rows - cols).abs() < 0.1);
    }

    // argmax of each row indexes a maximal element.
    #[test]
    fn argmax_indexes_maximum(a in tensor_strategy(4, 9)) {
        for (r, &idx) in ops::argmax_rows(&a).unwrap().iter().enumerate() {
            let row = a.row(r).unwrap();
            for &v in row {
                prop_assert!(row[idx] >= v);
            }
        }
    }

    // im2col/col2im adjointness for random geometries.
    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3,
        h in 3usize..8,
        w in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let g = Conv2dGeom::new(c, h, w, k, k, stride, pad).unwrap();
        let x: Vec<f32> = (0..c * h * w)
            .map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f32 - 500.0) / 100.0)
            .collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols())
            .map(|i| (((i as u64 * 31 + seed) * 40503 % 1000) as f32 - 500.0) / 100.0)
            .collect();
        let yt = Tensor::from_vec([g.col_rows(), g.col_cols()], y).unwrap();
        let cols = prionn_tensor::ops::im2col(&x, &g).unwrap();
        let lhs: f64 = cols.as_slice().iter().zip(yt.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64).sum();
        let back = prionn_tensor::ops::col2im(&yt, &g).unwrap();
        let rhs: f64 = x.iter().zip(&back).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-4 * lhs.abs().max(1.0));
    }
}
