//! Quick per-tier kernel probe: times the plain GEMM at 256³ (packed path)
//! and 64³ (skip-packing small path) under every dispatch tier, splitting
//! pack time from kernel time. A few seconds end to end — the fast
//! feedback loop for microkernel work, where the full kernels bench is
//! the measurement of record (see `docs/PERFORMANCE.md`, "Benching a
//! change"):
//!
//! ```bash
//! cargo run --release -p prionn-tensor --example kernel_probe
//! ```
//!
//! Tiers the host cannot run degrade to the best available one; the
//! printed tier name is the *requested* tier, so duplicate-looking rows
//! on a non-AVX-512 host are expected.

use prionn_tensor::ops::gemm::{self, Epilogue, GemmWorkspace, KernelTier, Layout};
use std::time::Instant;

fn bench_tier(tier: KernelTier, m: usize, n: usize, k: usize) {
    gemm::force_kernel_tier(Some(tier));
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.25 - 0.75).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.25 - 0.5).collect();
    let mut c = vec![0.0f32; m * n];
    let mut ws = GemmWorkspace::new();
    // Warmup
    for _ in 0..3 {
        gemm::gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::None,
        );
    }
    let reps = 30;
    let mut best = f64::MAX;
    for _ in 0..reps {
        ws.stats = Default::default();
        let t0 = Instant::now();
        gemm::gemm(
            &mut ws,
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut c,
            false,
            Epilogue::None,
        );
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    let flops = 2.0 * (m * n * k) as f64;
    let pack = ws.stats.pack_seconds; // last rep's pack time
    println!(
        "{:9} {m}x{n}x{k}: min {:7.3} ms  {:6.2} GFLOP/s  (last-rep pack {:.3} ms = {:.0}%)",
        tier.name(),
        best * 1e3,
        flops / best / 1e9,
        pack * 1e3,
        pack / best * 100.0
    );
    gemm::force_kernel_tier(None);
}

fn main() {
    for &(m, n, k) in &[(256usize, 256usize, 256usize), (64, 64, 64)] {
        for tier in [
            KernelTier::Avx512,
            KernelTier::Avx2,
            KernelTier::Autovec,
            KernelTier::Portable,
        ] {
            bench_tier(tier, m, n, k);
        }
    }
}
