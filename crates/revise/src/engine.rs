//! The revision engine: progress taps, re-prediction, intervals, kills.
//!
//! [`ReviseEngine`] owns the full in-flight loop around a
//! [`SimEngine`]:
//!
//! 1. jobs are [`track`](ReviseEngine::track)ed at submission with the
//!    prediction the gateway served and their requested walltime;
//! 2. each [`tick`](ReviseEngine::tick) polls the
//!    [`ProgressStream`], revises every due job
//!    with the [`Reviser`], wraps the revised runtime in
//!    a split-conformal interval calibrated on the drift monitor's
//!    outcome window, and installs the `[lo, hi]` seconds into the
//!    simulator (reserve against `hi`, backfill against `lo`);
//! 3. a job whose interval `lo` exceeds its requested walltime is
//!    *hopeless* — it will be killed at the walltime limit anyway, so the
//!    engine kills it now, reclaiming the nodes it would have burned, and
//!    records the partial outcome (tagged killed/requeued) so calibration
//!    stays honest;
//! 4. completed jobs are swept, their truth checked against the last
//!    served interval (the empirical-coverage gauges), and their outcome
//!    fed back to the gateway's drift monitor.
//!
//! Everything exports under the `revise_*` metric prefix and the
//! [`ops_probe`](ReviseEngine::ops_probe) JSON served at `/revise`.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use prionn_core::ResourcePrediction;
use prionn_observe::{DriftHead, DriftMonitor, OutcomeStatus};
use prionn_sched::{KilledJob, SimEngine};
use prionn_serve::Gateway;
use prionn_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::conformal::{ConformalCalibrator, PredictionInterval};
use crate::progress::{JobTruth, ProgressStream};
use crate::reviser::{ReviseConfig, Reviser};

/// A job handed to the engine at submission time.
#[derive(Clone, Copy, Debug)]
pub struct TrackedJob {
    /// Simulator job id.
    pub id: u64,
    /// The prediction served at submission.
    pub prediction: ResourcePrediction,
    /// User-requested walltime, seconds (the kill threshold).
    pub requested_seconds: u64,
    /// Ground truth for the progress tap.
    pub truth: JobTruth,
}

/// One revision the engine produced during a tick.
#[derive(Clone, Copy, Debug)]
pub struct Revision {
    /// The revised job.
    pub job_id: u64,
    /// Elapsed wall time at the observation, seconds.
    pub elapsed_seconds: f64,
    /// The blended re-prediction.
    pub revised: ResourcePrediction,
    /// Calibrated runtime interval, minutes (degenerate while the
    /// calibrator is below `min_calibration`).
    pub runtime_interval: PredictionInterval,
    /// True when the kill policy terminated the job on this revision.
    pub killed: bool,
}

/// What one [`ReviseEngine::tick`] did.
#[derive(Clone, Debug, Default)]
pub struct TickReport {
    /// Revisions produced, in observation order.
    pub revisions: Vec<Revision>,
    /// Jobs the kill policy terminated.
    pub kills: Vec<KilledJob>,
    /// Tracked jobs that completed naturally and were swept.
    pub completions: usize,
}

/// Point-in-time engine readout (also the `/revise` JSON document).
#[derive(Clone, Debug)]
pub struct ReviseSnapshot {
    /// Jobs currently tracked in flight.
    pub inflight: usize,
    /// Revisions produced since spawn.
    pub revisions_total: u64,
    /// Kill-policy terminations.
    pub kills_total: u64,
    /// Kills that requeued the job.
    pub requeues_total: u64,
    /// Node-hours reclaimed by killing hopeless jobs before their
    /// walltime limit would have.
    pub cpu_hours_saved: f64,
    /// Configured interval coverage level.
    pub nominal_coverage: f64,
    /// Observed coverage over completed jobs (`None` until a tracked job
    /// with a served interval has completed).
    pub empirical_coverage: Option<f64>,
    /// Completed jobs whose truth was checked against an interval.
    pub outcomes_observed: u64,
    /// Scores currently in the conformal calibrator.
    pub calibration_samples: usize,
}

impl ReviseSnapshot {
    /// The `/revise` ops document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"inflight\":{},\"revisions_total\":{},\"kills_total\":{},\
             \"requeues_total\":{},\"cpu_hours_saved\":{:.6},\
             \"nominal_coverage\":{:.4},\"empirical_coverage\":{},\
             \"outcomes_observed\":{},\"calibration_samples\":{}}}",
            self.inflight,
            self.revisions_total,
            self.kills_total,
            self.requeues_total,
            self.cpu_hours_saved,
            self.nominal_coverage,
            match self.empirical_coverage {
                Some(c) => format!("{c:.4}"),
                None => "null".to_string(),
            },
            self.outcomes_observed,
            self.calibration_samples,
        )
    }

    /// Compact single-line rendering for logs and demos.
    pub fn render(&self) -> String {
        format!(
            "inflight={} revisions={} kills={} requeues={} saved={:.2}h coverage={}/{:.0}% cal={}",
            self.inflight,
            self.revisions_total,
            self.kills_total,
            self.requeues_total,
            self.cpu_hours_saved,
            match self.empirical_coverage {
                Some(c) => format!("{:.0}%", c * 100.0),
                None => "-".to_string(),
            },
            self.nominal_coverage * 100.0,
            self.calibration_samples,
        )
    }
}

#[derive(Clone)]
struct Instruments {
    revisions: Counter,
    inflight: Gauge,
    kills: Counter,
    requeues: Counter,
    cpu_hours_saved: Gauge,
    interval_width: Histogram,
    outcomes_covered: Counter,
    outcomes_missed: Counter,
    empirical_coverage: Gauge,
    calibration_samples: Gauge,
}

impl Instruments {
    fn build(t: &Telemetry) -> Self {
        Instruments {
            revisions: t.counter(
                "revise_revisions_total",
                "In-flight re-predictions produced by the revision engine",
            ),
            inflight: t.gauge("revise_inflight_jobs", "Jobs currently tracked in flight"),
            kills: t.counter(
                "revise_kills_total",
                "Jobs terminated because their revised interval lo exceeded the requested walltime",
            ),
            requeues: t.counter(
                "revise_requeues_total",
                "Killed jobs placed back on the queue by the revision engine",
            ),
            cpu_hours_saved: t.gauge(
                "revise_cpu_hours_saved",
                "Node-hours reclaimed by early termination vs. running to the walltime limit",
            ),
            interval_width: t.histogram(
                "revise_interval_width_minutes",
                "Width (hi - lo) of served runtime prediction intervals, minutes",
            ),
            outcomes_covered: t.counter_with(
                "revise_outcomes_total",
                "Completed tracked jobs checked against their last served interval",
                &[("covered", "true")],
            ),
            outcomes_missed: t.counter_with(
                "revise_outcomes_total",
                "Completed tracked jobs checked against their last served interval",
                &[("covered", "false")],
            ),
            empirical_coverage: t.gauge(
                "revise_empirical_coverage",
                "Fraction of completed jobs whose truth fell inside the served interval",
            ),
            calibration_samples: t.gauge(
                "revise_calibration_samples",
                "Nonconformity scores currently in the conformal calibrator",
            ),
        }
    }
}

struct Tracked {
    job: TrackedJob,
    latest: Option<PredictionInterval>,
}

struct EngineInner {
    stream: ProgressStream,
    tracked: HashMap<u64, Tracked>,
    gateway: Option<Arc<Gateway>>,
    drift: Option<DriftMonitor>,
    calibrator: ConformalCalibrator,
    covered: u64,
    observed: u64,
    cpu_hours_saved: f64,
}

/// The in-flight revision engine. Cloning shares state; all methods take
/// `&self` and are thread-safe.
#[derive(Clone)]
pub struct ReviseEngine {
    inner: Arc<Mutex<EngineInner>>,
    instruments: Instruments,
    reviser: Reviser,
}

impl std::fmt::Debug for ReviseEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReviseEngine").finish()
    }
}

fn lock(m: &Mutex<EngineInner>) -> MutexGuard<'_, EngineInner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ReviseEngine {
    /// Build an engine registering its `revise_*` instruments in
    /// `telemetry`.
    pub fn new(telemetry: &Telemetry, cfg: ReviseConfig) -> Self {
        let stream = ProgressStream::new(cfg.cadence_seconds);
        ReviseEngine {
            inner: Arc::new(Mutex::new(EngineInner {
                stream,
                tracked: HashMap::new(),
                gateway: None,
                drift: None,
                calibrator: ConformalCalibrator::default(),
                covered: 0,
                observed: 0,
                cpu_hours_saved: 0.0,
            })),
            instruments: Instruments::build(telemetry),
            reviser: Reviser::new(cfg),
        }
    }

    /// The engine's tuning.
    pub fn config(&self) -> &ReviseConfig {
        self.reviser.config()
    }

    /// Attach the serving gateway: outcomes (completed and killed) are fed
    /// back through [`Gateway::record_outcome_with_status`], and the
    /// gateway's drift monitor becomes the calibration source.
    pub fn attach_gateway(&self, gateway: Arc<Gateway>) {
        let mut inner = lock(&self.inner);
        if let Some(d) = gateway.drift() {
            inner.drift = Some(d.clone());
        }
        inner.gateway = Some(gateway);
    }

    /// Attach a drift monitor directly (no gateway): it becomes both the
    /// calibration source and the outcome sink.
    pub fn attach_drift(&self, drift: &DriftMonitor) {
        lock(&self.inner).drift = Some(drift.clone());
    }

    /// Start tracking a job. Call at submission, alongside
    /// `SimEngine::submit`.
    pub fn track(&self, job: TrackedJob) {
        let mut inner = lock(&self.inner);
        inner.stream.register(job.id, job.truth);
        inner.tracked.insert(job.id, Tracked { job, latest: None });
        self.instruments.inflight.set(inner.tracked.len() as f64);
    }

    /// One revision pass over `sim`: poll progress, revise due jobs,
    /// install intervals, apply the kill policy, sweep completions.
    pub fn tick(&self, sim: &mut SimEngine) -> TickReport {
        let cfg = self.reviser.config().clone();
        let mut report = TickReport::default();
        let mut inner = lock(&self.inner);
        let inner = &mut *inner;

        // Refresh the calibrator from the drift monitor's rolling window
        // (killed/requeued outcomes included — that is the point of the
        // status-tagged record path).
        if let Some(d) = &inner.drift {
            inner.calibrator =
                ConformalCalibrator::from_window(&d.outcome_window(DriftHead::Runtime));
        }
        self.instruments
            .calibration_samples
            .set(inner.calibrator.len() as f64);
        let calibrated = inner.calibrator.len() >= cfg.min_calibration;

        for obs in inner.stream.poll(sim) {
            let Some(t) = inner.tracked.get_mut(&obs.job_id) else {
                continue;
            };
            let revised = self.reviser.revise(&t.job.prediction, &obs);
            let elapsed_min = obs.elapsed_seconds / 60.0;
            let mut interval = if calibrated {
                inner
                    .calibrator
                    .interval(revised.runtime_minutes, cfg.coverage)
            } else {
                PredictionInterval::degenerate(revised.runtime_minutes)
            };
            // The elapsed floor binds the interval too: the job has
            // already run this long.
            interval.lo = interval.lo.max(elapsed_min);
            interval.hi = interval.hi.max(interval.lo);
            t.latest = Some(interval);
            self.instruments.revisions.inc();
            self.instruments.interval_width.observe(interval.width());

            let lo_seconds = (interval.lo * 60.0).ceil() as u64;
            let hi_seconds = ((interval.hi * 60.0).ceil() as u64).max(lo_seconds);
            sim.set_estimate_interval(obs.job_id, lo_seconds, hi_seconds);

            // Kill policy: a calibrated lower bound beyond the requested
            // walltime means the job cannot finish inside its limit.
            let hopeless = cfg.kill_enabled && calibrated && lo_seconds > t.job.requested_seconds;
            report.revisions.push(Revision {
                job_id: obs.job_id,
                elapsed_seconds: obs.elapsed_seconds,
                revised,
                runtime_interval: interval,
                killed: hopeless,
            });
            if !hopeless {
                continue;
            }
            let job = t.job;
            let killed = if cfg.requeue_killed {
                sim.kill_and_requeue(obs.job_id, hi_seconds)
            } else {
                sim.kill_running(obs.job_id)
            };
            let Some(killed) = killed else {
                // Not actually running (already finished this instant);
                // the completion sweep below will handle it.
                report.revisions.last_mut().expect("just pushed").killed = false;
                continue;
            };
            let status = if cfg.requeue_killed {
                self.instruments.requeues.inc();
                OutcomeStatus::Requeued
            } else {
                OutcomeStatus::Killed
            };
            self.instruments.kills.inc();
            // Without early termination the job runs until its walltime
            // limit (or its natural end, whichever comes first): the
            // reclaimed occupancy is what the kill saved.
            let baseline_end = killed
                .projected_end
                .min(killed.started + job.requested_seconds);
            let saved_node_seconds =
                killed.nodes as f64 * baseline_end.saturating_sub(killed.killed_at) as f64;
            inner.cpu_hours_saved += saved_node_seconds / 3600.0;
            self.instruments.cpu_hours_saved.set(inner.cpu_hours_saved);
            // The partial outcome still scores the submission-time
            // prediction: truth-as-observed at termination.
            record_outcome(
                inner.gateway.as_deref(),
                inner.drift.as_ref(),
                &job.prediction,
                elapsed_min,
                obs.read_bytes_so_far,
                obs.write_bytes_so_far,
                status,
            );
            inner.tracked.remove(&obs.job_id);
            inner.stream.forget(obs.job_id);
            report.kills.push(killed);
        }

        // Sweep completions: tracked jobs that are neither running nor
        // queued but have a schedule entry ran to their natural end.
        let running: HashSet<u64> = sim.running_info().map(|r| r.id).collect();
        let queued: HashSet<u64> = sim.queued_jobs().map(|q| q.id).collect();
        let done: Vec<u64> = inner
            .tracked
            .keys()
            .filter(|id| !running.contains(id) && !queued.contains(id))
            .copied()
            .collect();
        for id in done {
            if !sim.finished().iter().any(|e| e.id == id) {
                continue; // tracked but not yet submitted to this sim
            }
            let t = inner.tracked.remove(&id).expect("tracked");
            inner.stream.forget(id);
            let truth_minutes = t.job.truth.runtime_seconds as f64 / 60.0;
            if let Some(interval) = t.latest {
                inner.observed += 1;
                if interval.contains(truth_minutes) {
                    inner.covered += 1;
                    self.instruments.outcomes_covered.inc();
                } else {
                    self.instruments.outcomes_missed.inc();
                }
                self.instruments
                    .empirical_coverage
                    .set(inner.covered as f64 / inner.observed as f64);
            }
            record_outcome(
                inner.gateway.as_deref(),
                inner.drift.as_ref(),
                &t.job.prediction,
                truth_minutes,
                t.job.truth.read_bytes,
                t.job.truth.write_bytes,
                OutcomeStatus::Completed,
            );
            report.completions += 1;
        }
        self.instruments.inflight.set(inner.tracked.len() as f64);
        report
    }

    /// Point-in-time readout.
    pub fn snapshot(&self) -> ReviseSnapshot {
        let inner = lock(&self.inner);
        ReviseSnapshot {
            inflight: inner.tracked.len(),
            revisions_total: self.instruments.revisions.value(),
            kills_total: self.instruments.kills.value(),
            requeues_total: self.instruments.requeues.value(),
            cpu_hours_saved: inner.cpu_hours_saved,
            nominal_coverage: self.reviser.config().coverage,
            empirical_coverage: (inner.observed > 0)
                .then(|| inner.covered as f64 / inner.observed as f64),
            outcomes_observed: inner.observed,
            calibration_samples: inner.calibrator.len(),
        }
    }

    /// A closure serving [`snapshot`](Self::snapshot) as JSON — plug into
    /// `OpsOptions::revise` to serve `/revise`.
    pub fn ops_probe(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let engine = self.clone();
        Arc::new(move || engine.snapshot().to_json())
    }
}

/// Route an outcome to the gateway when attached (it forwards to its
/// drift monitor), else straight to the drift monitor, else nowhere.
fn record_outcome(
    gateway: Option<&Gateway>,
    drift: Option<&DriftMonitor>,
    prediction: &ResourcePrediction,
    runtime_minutes: f64,
    read_bytes: f64,
    write_bytes: f64,
    status: OutcomeStatus,
) {
    if let Some(gw) = gateway {
        gw.record_outcome_with_status(prediction, runtime_minutes, read_bytes, write_bytes, status);
    } else if let Some(d) = drift {
        d.record_with_status(
            DriftHead::Runtime,
            runtime_minutes,
            prediction.runtime_minutes,
            status,
        );
        d.record_with_status(DriftHead::Read, read_bytes, prediction.read_bytes, status);
        d.record_with_status(
            DriftHead::Write,
            write_bytes,
            prediction.write_bytes,
            status,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_sched::SimJob;

    fn tracked(id: u64, predicted_min: f64, requested_s: u64, truth_s: u64) -> TrackedJob {
        TrackedJob {
            id,
            prediction: ResourcePrediction {
                runtime_minutes: predicted_min,
                read_bytes: 1.0e9,
                write_bytes: 1.0e9,
            },
            requested_seconds: requested_s,
            truth: JobTruth {
                runtime_seconds: truth_s,
                read_bytes: 1.0e9,
                write_bytes: 1.0e9,
            },
        }
    }

    fn seeded_drift(t: &Telemetry, n: usize) -> DriftMonitor {
        let d = DriftMonitor::with_defaults(t);
        for i in 0..n {
            // Perfect predictions: all conformal scores are 1.
            let v = 10.0 + i as f64;
            d.record(DriftHead::Runtime, v, v);
        }
        d
    }

    #[test]
    fn revisions_move_toward_observed_pace() {
        let t = Telemetry::new();
        let engine = ReviseEngine::new(
            &t,
            ReviseConfig {
                cadence_seconds: 60,
                ..ReviseConfig::default()
            },
        );
        // Predicted 60 min, actually a 300-minute job.
        engine.track(tracked(1, 60.0, 30_000, 18_000));
        let mut sim = SimEngine::new(8);
        sim.submit(SimJob {
            id: 1,
            submit: 0,
            nodes: 4,
            runtime: 18_000,
            estimate: 3_600,
        });
        sim.advance_to(3_600);
        let report = engine.tick(&mut sim);
        assert_eq!(report.revisions.len(), 1);
        let rev = &report.revisions[0];
        assert!(
            rev.revised.runtime_minutes > 60.0,
            "revised={}",
            rev.revised.runtime_minutes
        );
        assert!(
            rev.revised.runtime_minutes >= 60.0,
            "elapsed floor: already ran 60 minutes"
        );
        assert!(!rev.killed);
        assert_eq!(engine.snapshot().inflight, 1);
        assert!(t.prometheus().contains("revise_revisions_total 1"));
    }

    #[test]
    fn kill_policy_reclaims_hopeless_jobs() {
        let t = Telemetry::new();
        let engine = ReviseEngine::new(&t, ReviseConfig::default());
        let drift = seeded_drift(&t, 64);
        engine.attach_drift(&drift);
        // Requested 2h walltime; the job actually runs 400 minutes and the
        // model (correctly, by pace) revises far past the limit.
        engine.track(tracked(7, 240.0, 7_200, 24_000));
        let mut sim = SimEngine::new(8);
        sim.submit(SimJob {
            id: 7,
            submit: 0,
            nodes: 8,
            runtime: 24_000,
            estimate: 14_400,
        });
        sim.advance_to(1_800);
        let report = engine.tick(&mut sim);
        assert_eq!(report.kills.len(), 1, "hopeless job killed");
        assert!(report.revisions[0].killed);
        let killed = report.kills[0];
        assert_eq!(killed.killed_at, 1_800);
        // Baseline would have burned nodes until the 7200s walltime limit.
        let snap = engine.snapshot();
        let expected_hours = 8.0 * (7_200.0 - 1_800.0) / 3600.0;
        assert!(
            (snap.cpu_hours_saved - expected_hours).abs() < 1e-9,
            "saved={} expected={expected_hours}",
            snap.cpu_hours_saved
        );
        assert_eq!(snap.inflight, 0, "killed job untracked");
        // The killed outcome entered the drift window (no survivorship
        // bias): 64 seeds + 1 killed sample.
        assert_eq!(drift.outcome_window(DriftHead::Runtime).len(), 65);
        let text = t.prometheus();
        assert!(text.contains("revise_kills_total 1"), "{text}");
        assert!(
            text.contains("drift_outcomes_total{head=\"runtime\",status=\"killed\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn completions_are_swept_and_coverage_tracked() {
        let t = Telemetry::new();
        let engine = ReviseEngine::new(
            &t,
            ReviseConfig {
                cadence_seconds: 60,
                kill_enabled: false,
                ..ReviseConfig::default()
            },
        );
        let drift = seeded_drift(&t, 64);
        engine.attach_drift(&drift);
        // On-pace job: prediction matches truth, interval must cover.
        engine.track(tracked(3, 60.0, 7_200, 3_600));
        let mut sim = SimEngine::new(8);
        sim.submit(SimJob {
            id: 3,
            submit: 0,
            nodes: 2,
            runtime: 3_600,
            estimate: 3_600,
        });
        sim.advance_to(1_800);
        let mid = engine.tick(&mut sim);
        assert_eq!(mid.revisions.len(), 1, "revised mid-flight");
        sim.advance_to(4_000);
        let done = engine.tick(&mut sim);
        assert_eq!(done.completions, 1);
        let snap = engine.snapshot();
        assert_eq!(snap.outcomes_observed, 1);
        assert_eq!(snap.empirical_coverage, Some(1.0), "on-pace job covered");
        assert_eq!(snap.inflight, 0);
        let text = t.prometheus();
        assert!(
            text.contains("revise_outcomes_total{covered=\"true\"} 1"),
            "{text}"
        );
        // The completion fed the drift window too.
        assert!(
            text.contains("drift_outcomes_total{head=\"runtime\",status=\"completed\"} 65"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let t = Telemetry::new();
        let engine = ReviseEngine::new(&t, ReviseConfig::default());
        let json = (engine.ops_probe())();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("inflight").unwrap().as_u64(), Some(0));
        assert!(parsed.get("empirical_coverage").unwrap().is_null());
        assert!(parsed.get("nominal_coverage").unwrap().as_f64().unwrap() > 0.0);
        assert!(engine.snapshot().render().contains("inflight=0"));
    }
}
