//! Recency-weighted in-flight re-prediction.
//!
//! PRIONN's prediction is made once, from the job script alone. But a
//! running job leaks information every second it runs: its elapsed wall
//! time is a hard floor on its total runtime, and the fraction of its
//! predicted IO already consumed is a direct progress signal. The
//! [`Reviser`] folds that signal back into the submission-time prediction:
//!
//! 1. **Progress extrapolation** — with `f` = fraction of predicted total
//!    IO consumed and `t` = elapsed, the progress-implied total runtime is
//!    `t / f` (a job that did half its IO in 10 minutes is a ~20-minute
//!    job). Below [`ReviseConfig::min_io_fraction`] the signal is too
//!    noisy and the initial prediction stands.
//! 2. **Recency-weighted blend** — `revised = (1−w)·initial + w·progress`
//!    with `w = t / (t + half_life)`. The weight is monotone in elapsed
//!    time: the older the submission-time prediction gets, the less it is
//!    trusted (monotone staleness decay), smoothly and without a cliff.
//! 3. **Elapsed floor** — whatever the blend says, a job that has already
//!    run `t` cannot finish in less than `t`: revised runtime is clamped
//!    to the observed floor, and revised IO totals to the IO already seen.

use prionn_core::ResourcePrediction;

/// Tuning for the revision loop (shared by [`Reviser`] and the
/// [`ReviseEngine`](crate::ReviseEngine) built on it).
#[derive(Clone, Debug)]
pub struct ReviseConfig {
    /// Seconds between progress observations per job.
    pub cadence_seconds: u64,
    /// Nominal coverage for the conformal intervals (e.g. `0.9`).
    pub coverage: f64,
    /// Blend half-saturation: at `elapsed == half_life_seconds` the
    /// progress estimate and the initial prediction weigh equally.
    pub half_life_seconds: f64,
    /// Minimum fraction of predicted IO consumed before the progress
    /// extrapolation is trusted at all.
    pub min_io_fraction: f64,
    /// Calibration scores required before intervals are non-degenerate
    /// and the kill policy may act.
    pub min_calibration: usize,
    /// Terminate jobs whose revised interval `lo` exceeds their requested
    /// walltime.
    pub kill_enabled: bool,
    /// Put killed jobs back on the queue for a fresh attempt.
    pub requeue_killed: bool,
}

impl Default for ReviseConfig {
    fn default() -> Self {
        ReviseConfig {
            cadence_seconds: 60,
            coverage: 0.9,
            half_life_seconds: 600.0,
            min_io_fraction: 0.02,
            min_calibration: 32,
            kill_enabled: true,
            requeue_killed: false,
        }
    }
}

/// One partial-progress observation of a running job, as produced by the
/// [`ProgressStream`](crate::ProgressStream) tap on the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressObs {
    /// The running job.
    pub job_id: u64,
    /// Wall time since the job started, seconds.
    pub elapsed_seconds: f64,
    /// Bytes read so far.
    pub read_bytes_so_far: f64,
    /// Bytes written so far.
    pub write_bytes_so_far: f64,
}

impl ProgressObs {
    /// Fraction of `initial`'s predicted total IO already consumed
    /// (0 when the prediction expected no IO; may exceed 1 when the job
    /// out-runs its prediction).
    pub fn io_fraction(&self, initial: &ResourcePrediction) -> f64 {
        let predicted_total = initial.read_bytes + initial.write_bytes;
        if predicted_total <= 0.0 {
            return 0.0;
        }
        ((self.read_bytes_so_far + self.write_bytes_so_far) / predicted_total).max(0.0)
    }
}

/// The pure revision step: no locks, no allocation, no model inference —
/// this is the wire/tick hot path, benchmarked at hundreds of thousands
/// of revisions per second.
#[derive(Clone, Debug)]
pub struct Reviser {
    cfg: ReviseConfig,
}

impl Reviser {
    /// A reviser with the given tuning.
    pub fn new(cfg: ReviseConfig) -> Self {
        Reviser { cfg }
    }

    /// The configured tuning.
    pub fn config(&self) -> &ReviseConfig {
        &self.cfg
    }

    /// Blend weight on the progress estimate after `elapsed_seconds` —
    /// `t / (t + half_life)`, monotone in `t`, 0 at submission,
    /// approaching 1 as the initial prediction goes stale.
    pub fn staleness_weight(&self, elapsed_seconds: f64) -> f64 {
        let t = elapsed_seconds.max(0.0);
        let h = self.cfg.half_life_seconds.max(f64::EPSILON);
        t / (t + h)
    }

    /// Revise `initial` with one progress observation. Guarantees:
    /// revised runtime ≥ observed elapsed time, revised IO totals ≥ IO
    /// already observed, and at `elapsed == 0` the initial prediction is
    /// returned unchanged.
    pub fn revise(&self, initial: &ResourcePrediction, obs: &ProgressObs) -> ResourcePrediction {
        let elapsed_min = obs.elapsed_seconds.max(0.0) / 60.0;
        if elapsed_min <= 0.0 {
            return *initial;
        }
        let w = self.staleness_weight(obs.elapsed_seconds);
        let frac = obs.io_fraction(initial);

        // Progress-implied total runtime; without a usable IO signal the
        // initial prediction stands in (the blend then only enforces the
        // elapsed floor).
        let progress_runtime = if frac >= self.cfg.min_io_fraction {
            elapsed_min / frac
        } else {
            initial.runtime_minutes
        };
        let runtime_minutes =
            ((1.0 - w) * initial.runtime_minutes + w * progress_runtime).max(elapsed_min);

        // IO totals: extrapolate the observed rate over the revised
        // runtime, blend the same way, floor at what has been seen.
        let time_scale = runtime_minutes / elapsed_min;
        let read_bytes = ((1.0 - w) * initial.read_bytes + w * obs.read_bytes_so_far * time_scale)
            .max(obs.read_bytes_so_far);
        let write_bytes = ((1.0 - w) * initial.write_bytes
            + w * obs.write_bytes_so_far * time_scale)
            .max(obs.write_bytes_so_far);

        ResourcePrediction {
            runtime_minutes,
            read_bytes,
            write_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial() -> ResourcePrediction {
        ResourcePrediction {
            runtime_minutes: 60.0,
            read_bytes: 6.0e9,
            write_bytes: 6.0e9,
        }
    }

    fn obs(elapsed_seconds: f64, io_frac_of_initial: f64) -> ProgressObs {
        ProgressObs {
            job_id: 1,
            elapsed_seconds,
            read_bytes_so_far: 6.0e9 * io_frac_of_initial,
            write_bytes_so_far: 6.0e9 * io_frac_of_initial,
        }
    }

    #[test]
    fn zero_elapsed_returns_initial_unchanged() {
        let r = Reviser::new(ReviseConfig::default());
        assert_eq!(r.revise(&initial(), &obs(0.0, 0.0)), initial());
    }

    #[test]
    fn staleness_weight_is_monotone_and_bounded() {
        let r = Reviser::new(ReviseConfig::default());
        let mut last = -1.0;
        for t in [0.0, 10.0, 60.0, 600.0, 3600.0, 86400.0] {
            let w = r.staleness_weight(t);
            assert!((0.0..1.0).contains(&w), "w={w}");
            assert!(w > last || (t == 0.0 && w == 0.0), "not monotone at {t}");
            last = w;
        }
        assert!((r.staleness_weight(600.0) - 0.5).abs() < 1e-12, "half-life");
    }

    #[test]
    fn on_pace_job_keeps_its_prediction() {
        // Half the predicted IO done at half the predicted runtime: the
        // progress estimate agrees with the initial one.
        let r = Reviser::new(ReviseConfig::default());
        let revised = r.revise(&initial(), &obs(1800.0, 0.5));
        assert!(
            (revised.runtime_minutes - 60.0).abs() < 1e-9,
            "{}",
            revised.runtime_minutes
        );
    }

    #[test]
    fn slow_job_is_revised_upward_with_growing_conviction() {
        // Only 10% of predicted IO done at the 30-minute mark: the job is
        // pacing toward ~300 minutes. More elapsed time at the same pace
        // pushes the blend further from the initial 60.
        let r = Reviser::new(ReviseConfig::default());
        let at_30 = r.revise(&initial(), &obs(1800.0, 0.10));
        assert!(at_30.runtime_minutes > 60.0);
        let at_60 = r.revise(&initial(), &obs(3600.0, 0.20));
        assert!(
            at_60.runtime_minutes > at_30.runtime_minutes,
            "staleness decay: {} then {}",
            at_30.runtime_minutes,
            at_60.runtime_minutes
        );
        assert!(at_60.runtime_minutes < 300.0, "blend, not replacement");
    }

    #[test]
    fn elapsed_floor_is_never_violated() {
        // A job claimed to be 60 minutes that is still running at 100
        // minutes must be revised to at least 100 minutes, even when the
        // IO signal (absurdly) says it is nearly done.
        let r = Reviser::new(ReviseConfig::default());
        let revised = r.revise(&initial(), &obs(6000.0, 0.99));
        assert!(
            revised.runtime_minutes >= 100.0,
            "{}",
            revised.runtime_minutes
        );
    }

    #[test]
    fn io_floors_at_observed_bytes() {
        let r = Reviser::new(ReviseConfig::default());
        // The job already read 2× its predicted total.
        let o = ProgressObs {
            job_id: 1,
            elapsed_seconds: 600.0,
            read_bytes_so_far: 12.0e9,
            write_bytes_so_far: 0.0,
        };
        let revised = r.revise(&initial(), &o);
        assert!(revised.read_bytes >= 12.0e9, "{}", revised.read_bytes);
    }

    #[test]
    fn tiny_io_fraction_falls_back_to_initial_estimate() {
        let cfg = ReviseConfig {
            min_io_fraction: 0.05,
            ..ReviseConfig::default()
        };
        let r = Reviser::new(cfg);
        // 1% of IO done after one minute: too little signal, the revision
        // is just the initial prediction (the floor is far away).
        let revised = r.revise(&initial(), &obs(60.0, 0.01));
        assert!(
            (revised.runtime_minutes - 60.0).abs() < 1e-9,
            "{}",
            revised.runtime_minutes
        );
    }
}
