//! Split-conformal prediction intervals over the drift monitor's window.
//!
//! The calibration set is the rolling outcome window `prionn-observe`'s
//! [`DriftMonitor`](prionn_observe::DriftMonitor) already maintains per
//! prediction head: recent `(truth, predicted)` pairs, killed and requeued
//! jobs included. Each pair yields a *nonconformity score* — the
//! multiplicative residual
//!
//! ```text
//! s = truth / max(predicted, ε)
//! ```
//!
//! — and split-conformal inference turns the empirical score distribution
//! into a calibrated interval for a new point prediction `p`:
//!
//! ```text
//! [p · q̂(α/2),  p · q̂(1 − α/2)]      with α = 1 − coverage
//! ```
//!
//! where `q̂(β)` is the conformal quantile at level `β` over the `n`
//! calibration scores (rank `⌈(n+1)β⌉`, clamped to the sample — the
//! finite-sample correction that makes marginal coverage ≥ nominal hold
//! under exchangeability). Ratios rather than additive residuals because
//! both runtime and IO span four-plus orders of magnitude in the paper's
//! workload: an additive band wide enough for 16-hour jobs would be
//! useless for 5-minute ones.
//!
//! Two properties the property tests pin:
//! * **coverage** — on held-out outcomes drawn from the same distribution,
//!   the fraction of truths inside the interval is within a few percent of
//!   nominal at 80/90/95%;
//! * **monotonicity** — raising the coverage level never narrows the
//!   interval (immediate from the quantile ranks moving outward).

use prionn_observe::OutcomeSample;

/// Floor for the prediction in the score denominator (and for interval
/// arithmetic), so a zero prediction cannot produce infinite scores.
pub const SCORE_EPSILON: f64 = 1e-9;

/// A calibrated `[lo, point, hi]` prediction. `point` is the model's
/// (possibly revised) point estimate; `lo`/`hi` bound the truth at the
/// calibrator's coverage level. For a systematically biased model the
/// point can sit outside `[lo, hi]` — the interval calibrates where the
/// *truth* lands, not where the model thinks it does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictionInterval {
    /// Lower bound (optimistic: backfill fit-checks against this).
    pub lo: f64,
    /// The point estimate itself.
    pub point: f64,
    /// Upper bound (pessimistic: reservations hold space until this).
    pub hi: f64,
}

impl PredictionInterval {
    /// The zero-width interval around `point` — what an uncalibrated
    /// engine serves until it has seen enough outcomes.
    pub fn degenerate(point: f64) -> Self {
        PredictionInterval {
            lo: point,
            point,
            hi: point,
        }
    }

    /// Does the interval cover `truth`?
    pub fn contains(&self, truth: f64) -> bool {
        self.lo <= truth && truth <= self.hi
    }

    /// `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Split-conformal calibrator for one prediction head: a sorted sample of
/// nonconformity scores and the quantile machinery over it. Rebuild it
/// from the drift window whenever fresher outcomes should count (it is a
/// cheap value type — one sorted `Vec`).
#[derive(Clone, Debug, Default)]
pub struct ConformalCalibrator {
    /// Ascending nonconformity scores.
    scores: Vec<f64>,
}

impl ConformalCalibrator {
    /// Calibrator over raw `truth / max(pred, ε)` scores. Non-finite and
    /// non-positive entries are dropped.
    pub fn from_scores(mut scores: Vec<f64>) -> Self {
        scores.retain(|s| s.is_finite() && *s > 0.0);
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        ConformalCalibrator { scores }
    }

    /// Calibrator over a drift-monitor outcome window (the designed
    /// source: `DriftMonitor::outcome_window(head)`).
    pub fn from_window(window: &[OutcomeSample]) -> Self {
        Self::from_scores(
            window
                .iter()
                .map(|s| s.truth / s.predicted.max(SCORE_EPSILON))
                .collect(),
        )
    }

    /// Calibration-sample count.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no usable scores were supplied.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The conformal `(q_lo, q_hi)` score quantiles at `coverage`
    /// (e.g. `0.9` → the 5% and 95% conformal quantiles), or `None` when
    /// uncalibrated. Ranks use the `(n+1)` finite-sample correction and
    /// clamp to the observed sample, so `q_hi` saturates at the largest
    /// score once coverage exceeds `n/(n+1)`.
    pub fn quantiles(&self, coverage: f64) -> Option<(f64, f64)> {
        let n = self.scores.len();
        if n == 0 {
            return None;
        }
        let alpha = (1.0 - coverage.clamp(0.0, 1.0)).clamp(0.0, 1.0);
        let np1 = (n + 1) as f64;
        // Lower tail: rank ⌊(n+1)·α/2⌋, at least 1 (the smallest score).
        let r_lo = ((np1 * (alpha / 2.0)).floor() as usize).clamp(1, n);
        // Upper tail: rank ⌈(n+1)·(1−α/2)⌉, at most n.
        let r_hi = ((np1 * (1.0 - alpha / 2.0)).ceil() as usize).clamp(1, n);
        Some((self.scores[r_lo - 1], self.scores[r_hi - 1]))
    }

    /// The calibrated interval around `point` at `coverage`; degenerate
    /// when uncalibrated.
    pub fn interval(&self, point: f64, coverage: f64) -> PredictionInterval {
        match self.quantiles(coverage) {
            Some((q_lo, q_hi)) => {
                let base = point.max(SCORE_EPSILON);
                PredictionInterval {
                    lo: base * q_lo,
                    point,
                    hi: base * q_hi,
                }
            }
            None => PredictionInterval::degenerate(point),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_until_calibrated() {
        let c = ConformalCalibrator::default();
        assert!(c.is_empty());
        let iv = c.interval(10.0, 0.9);
        assert_eq!(iv, PredictionInterval::degenerate(10.0));
        assert_eq!(iv.width(), 0.0);
        assert!(iv.contains(10.0));
    }

    #[test]
    fn perfect_model_gives_tight_intervals() {
        // All scores exactly 1: the interval collapses onto the point.
        let c = ConformalCalibrator::from_scores(vec![1.0; 100]);
        let iv = c.interval(42.0, 0.9);
        assert!((iv.lo - 42.0).abs() < 1e-9);
        assert!((iv.hi - 42.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_ranks_bracket_the_sample() {
        // Scores 0.01..=1.00 in hundredths: conformal 5%/95% quantiles of
        // 100 samples land at ranks ⌊101·0.05⌋=5 and ⌈101·0.95⌉=96.
        let scores: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let c = ConformalCalibrator::from_scores(scores);
        let (q_lo, q_hi) = c.quantiles(0.9).unwrap();
        assert!((q_lo - 0.05).abs() < 1e-9, "q_lo={q_lo}");
        assert!((q_hi - 0.96).abs() < 1e-9, "q_hi={q_hi}");
    }

    #[test]
    fn intervals_widen_monotonically_with_coverage() {
        let scores: Vec<f64> = (1..=500).map(|i| 0.5 + i as f64 / 500.0).collect();
        let c = ConformalCalibrator::from_scores(scores);
        let mut last_width = -1.0;
        for coverage in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let w = c.interval(100.0, coverage).width();
            assert!(
                w >= last_width,
                "width shrank at coverage {coverage}: {w} < {last_width}"
            );
            last_width = w;
        }
    }

    #[test]
    fn biased_model_interval_recentres_on_truth() {
        // Model underpredicts 2×: every score is ~2, so the calibrated
        // interval sits around 2·point — above the point estimate.
        let c = ConformalCalibrator::from_scores(vec![2.0; 64]);
        let iv = c.interval(50.0, 0.8);
        assert!(iv.lo > 50.0, "lo={} should exceed the biased point", iv.lo);
        assert!(iv.contains(100.0), "covers where the truth actually lands");
    }

    #[test]
    fn window_scores_are_truth_over_prediction() {
        let window = vec![
            OutcomeSample {
                truth: 30.0,
                predicted: 10.0,
                bin: 0,
            },
            OutcomeSample {
                truth: 5.0,
                predicted: 10.0,
                bin: 0,
            },
            OutcomeSample {
                truth: f64::NAN,
                predicted: 10.0,
                bin: 0,
            },
        ];
        let c = ConformalCalibrator::from_window(&window);
        assert_eq!(c.len(), 2, "NaN dropped");
        let (q_lo, q_hi) = c.quantiles(0.0).unwrap();
        assert!((q_lo - 0.5).abs() < 1e-9);
        assert!((q_hi - 3.0).abs() < 1e-9);
    }
}
