//! # prionn-revise — continuous in-flight re-prediction with calibrated intervals
//!
//! PRIONN predicts a job exactly once, at submission. This crate closes
//! the loop while the job *runs*:
//!
//! * [`progress`] — a [`ProgressStream`] taps the sched simulator for
//!   partial-progress observations (elapsed wall time, IO-so-far) on a
//!   configurable cadence, standing in for a real resource manager's
//!   node-agent counters;
//! * [`reviser`] — the [`Reviser`] re-predicts in-flight jobs by blending
//!   the submission-time prediction with a progress extrapolation under a
//!   recency weight `t / (t + half_life)` (monotone staleness decay),
//!   never revising a job below its observed elapsed floor;
//! * [`conformal`] — a [`ConformalCalibrator`] turns the rolling outcome
//!   window the `prionn-observe` [`DriftMonitor`](prionn_observe::DriftMonitor)
//!   already maintains into split-conformal quantiles, so every
//!   prediction ships as a calibrated `[lo, point, hi]`
//!   [`PredictionInterval`] at a configurable coverage level;
//! * [`engine`] — the [`ReviseEngine`] drives the loop against a
//!   [`SimEngine`](prionn_sched::SimEngine): intervals flow into
//!   interval-aware EASY backfill (reserve against `hi`, backfill against
//!   `lo`) and a kill/requeue policy terminates jobs whose revised `lo`
//!   exceeds their requested walltime, reclaiming the node-hours the
//!   walltime limit would have burned. Outcomes — completed *and* killed —
//!   feed back into the drift window, keeping calibration free of
//!   survivorship bias.
//!
//! ```
//! use prionn_revise::{ConformalCalibrator, ProgressObs, Reviser, ReviseConfig};
//! use prionn_core::ResourcePrediction;
//!
//! let reviser = Reviser::new(ReviseConfig::default());
//! let initial = ResourcePrediction {
//!     runtime_minutes: 60.0,
//!     read_bytes: 1.0e9,
//!     write_bytes: 1.0e9,
//! };
//! // 30 minutes in, only 10% of the predicted IO is done: re-predict.
//! let obs = ProgressObs {
//!     job_id: 1,
//!     elapsed_seconds: 1800.0,
//!     read_bytes_so_far: 1.0e8,
//!     write_bytes_so_far: 1.0e8,
//! };
//! let revised = reviser.revise(&initial, &obs);
//! assert!(revised.runtime_minutes > initial.runtime_minutes);
//!
//! // Wrap it in a calibrated interval (scores from a drift window).
//! let cal = ConformalCalibrator::from_scores(vec![0.8, 0.9, 1.0, 1.1, 1.25]);
//! let interval = cal.interval(revised.runtime_minutes, 0.8);
//! assert!(interval.lo <= interval.hi);
//! ```
//!
//! The fleet wire protocol serves revisions on the `REVISE` frame kind,
//! the ops endpoint exposes `/revise`, and `docs/REVISION.md` covers the
//! cadence, blending, and conformal math in detail.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformal;
pub mod engine;
pub mod progress;
pub mod reviser;

pub use conformal::{ConformalCalibrator, PredictionInterval, SCORE_EPSILON};
pub use engine::{ReviseEngine, ReviseSnapshot, Revision, TickReport, TrackedJob};
pub use progress::{JobTruth, ProgressStream};
pub use reviser::{ProgressObs, ReviseConfig, Reviser};
