//! The progress tap on the scheduling simulator.
//!
//! A real resource manager reads a running job's elapsed time and IO
//! counters from the node agents; the simulator knows both exactly. The
//! [`ProgressStream`] bridges them: jobs register their ground truth at
//! submission, and [`ProgressStream::poll`] turns the simulator's running
//! set into [`ProgressObs`] records — elapsed wall time plus bytes read
//! and written so far (IO accrues linearly over the job's life, matching
//! the constant-bandwidth model `prionn-sched`'s IO timelines use). Each
//! job is observed at most once per [`cadence`](ProgressStream::cadence)
//! seconds of simulated time, so revision cost scales with the running
//! set, not with the clock rate.

use std::collections::HashMap;

use prionn_sched::SimEngine;

use crate::reviser::ProgressObs;

/// Ground truth a job registers with the stream so the tap can synthesise
/// its node-agent counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobTruth {
    /// Actual total runtime, seconds.
    pub runtime_seconds: u64,
    /// Actual total bytes read.
    pub read_bytes: f64,
    /// Actual total bytes written.
    pub write_bytes: f64,
}

/// Per-job progress observation source over a [`SimEngine`].
#[derive(Clone, Debug, Default)]
pub struct ProgressStream {
    cadence_seconds: u64,
    truth: HashMap<u64, JobTruth>,
    last_obs: HashMap<u64, u64>,
}

impl ProgressStream {
    /// A stream observing each running job at most once per
    /// `cadence_seconds` of simulated time.
    pub fn new(cadence_seconds: u64) -> Self {
        ProgressStream {
            cadence_seconds: cadence_seconds.max(1),
            ..ProgressStream::default()
        }
    }

    /// The observation cadence, seconds.
    pub fn cadence(&self) -> u64 {
        self.cadence_seconds
    }

    /// Register a job's ground truth. Call at submission, before the job
    /// can start.
    pub fn register(&mut self, job_id: u64, truth: JobTruth) {
        self.truth.insert(job_id, truth);
    }

    /// Drop a job (completed, killed, or no longer interesting).
    pub fn forget(&mut self, job_id: u64) {
        self.truth.remove(&job_id);
        self.last_obs.remove(&job_id);
    }

    /// Registered jobs.
    pub fn registered(&self) -> usize {
        self.truth.len()
    }

    /// Observe every registered running job that is due (started, nonzero
    /// elapsed time, and at least one cadence past its previous
    /// observation). Observations are synthesised from the registered
    /// truth: IO-so-far accrues linearly over the job's actual runtime.
    pub fn poll(&mut self, sim: &SimEngine) -> Vec<ProgressObs> {
        let now = sim.now();
        let mut out = Vec::new();
        for r in sim.running_info() {
            let Some(truth) = self.truth.get(&r.id) else {
                continue;
            };
            let elapsed = now.saturating_sub(r.start);
            if elapsed == 0 {
                continue;
            }
            let last = self.last_obs.get(&r.id).copied().unwrap_or(r.start);
            if now.saturating_sub(last) < self.cadence_seconds {
                continue;
            }
            self.last_obs.insert(r.id, now);
            let time_frac = (elapsed as f64 / truth.runtime_seconds.max(1) as f64).min(1.0);
            out.push(ProgressObs {
                job_id: r.id,
                elapsed_seconds: elapsed as f64,
                read_bytes_so_far: truth.read_bytes * time_frac,
                write_bytes_so_far: truth.write_bytes * time_frac,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_sched::SimJob;

    fn truth() -> JobTruth {
        JobTruth {
            runtime_seconds: 1000,
            read_bytes: 1.0e9,
            write_bytes: 5.0e8,
        }
    }

    #[test]
    fn poll_reports_elapsed_and_linear_io() {
        let mut sim = SimEngine::new(8);
        let mut stream = ProgressStream::new(60);
        stream.register(1, truth());
        sim.submit(SimJob {
            id: 1,
            submit: 0,
            nodes: 4,
            runtime: 1000,
            estimate: 1200,
        });
        sim.advance_to(250);
        let obs = stream.poll(&sim);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].elapsed_seconds, 250.0);
        assert!((obs[0].read_bytes_so_far - 0.25e9).abs() < 1.0);
        assert!((obs[0].write_bytes_so_far - 0.125e9).abs() < 1.0);
    }

    #[test]
    fn cadence_rate_limits_observations() {
        let mut sim = SimEngine::new(8);
        let mut stream = ProgressStream::new(100);
        stream.register(1, truth());
        sim.submit(SimJob {
            id: 1,
            submit: 0,
            nodes: 4,
            runtime: 1000,
            estimate: 1000,
        });
        sim.advance_to(150);
        assert_eq!(stream.poll(&sim).len(), 1);
        sim.advance_to(200);
        assert_eq!(stream.poll(&sim).len(), 0, "50s later: not due yet");
        sim.advance_to(260);
        assert_eq!(stream.poll(&sim).len(), 1, "110s later: due again");
    }

    #[test]
    fn unregistered_and_queued_jobs_are_invisible() {
        let mut sim = SimEngine::new(4);
        let mut stream = ProgressStream::new(10);
        // Job 1 runs but is not registered; job 2 is registered but queued
        // behind job 1.
        stream.register(2, truth());
        sim.submit(SimJob {
            id: 1,
            submit: 0,
            nodes: 4,
            runtime: 500,
            estimate: 500,
        });
        sim.submit(SimJob {
            id: 2,
            submit: 1,
            nodes: 4,
            runtime: 500,
            estimate: 500,
        });
        sim.advance_to(100);
        assert!(stream.poll(&sim).is_empty());
        assert_eq!(stream.registered(), 1);
        stream.forget(2);
        assert_eq!(stream.registered(), 0);
    }
}
