//! The split-conformal guarantees, checked empirically and by property.
//!
//! * **Coverage** — a calibrator built on one sample of simulated job
//!   outcomes must cover a *held-out* sample from the same distribution
//!   at (close to) its nominal rate: within ±3% at 80/90/95%. This is
//!   the marginal-coverage guarantee of split-conformal inference under
//!   exchangeability; the tolerance absorbs finite-sample noise at the
//!   fixed seeds below.
//! * **Monotonicity** — raising the coverage level never narrows the
//!   interval, for any score sample and any point estimate.

use prionn_revise::{ConformalCalibrator, SCORE_EPSILON};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One simulated (truth, prediction) population: predictions spread over
/// two orders of magnitude, truths off by a heavy-ish multiplicative
/// error — a skewed model like the paper's runtime head.
fn outcomes(rng: &mut ChaCha8Rng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| {
            let predicted = rng.gen_range(5.0..500.0f64);
            // Multiplicative error in [2^-1.5, 2^1.5], log-uniform.
            let err = 2.0f64.powf(rng.gen_range(-1.5..1.5));
            (predicted * err, predicted)
        })
        .collect()
}

fn calibrator_over(sample: &[(f64, f64)]) -> ConformalCalibrator {
    ConformalCalibrator::from_scores(
        sample
            .iter()
            .map(|(truth, pred)| truth / pred.max(SCORE_EPSILON))
            .collect(),
    )
}

#[test]
fn held_out_coverage_is_within_three_points_of_nominal() {
    for seed in [7u64, 1234, 987_654] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let calibration = outcomes(&mut rng, 2000);
        let holdout = outcomes(&mut rng, 2000);
        let cal = calibrator_over(&calibration);

        for nominal in [0.80, 0.90, 0.95] {
            let covered = holdout
                .iter()
                .filter(|(truth, pred)| cal.interval(*pred, nominal).contains(*truth))
                .count();
            let empirical = covered as f64 / holdout.len() as f64;
            assert!(
                (empirical - nominal).abs() <= 0.03,
                "seed {seed}: empirical coverage {empirical:.4} strayed \
                 more than 3 points from nominal {nominal}"
            );
        }
    }
}

#[test]
fn coverage_holds_even_for_a_systematically_biased_model() {
    // Every prediction is 3x too low. The point estimates are useless,
    // but the intervals — calibrated on the same biased model — must
    // still cover the truth at the nominal rate.
    let mut rng = ChaCha8Rng::seed_from_u64(55);
    let biased = |rng: &mut ChaCha8Rng, n: usize| -> Vec<(f64, f64)> {
        (0..n)
            .map(|_| {
                let predicted = rng.gen_range(5.0..500.0f64);
                let err = 2.0f64.powf(rng.gen_range(-0.5..0.5));
                (3.0 * predicted * err, predicted)
            })
            .collect()
    };
    let cal = calibrator_over(&biased(&mut rng, 2000));
    let holdout = biased(&mut rng, 2000);
    let covered = holdout
        .iter()
        .filter(|(truth, pred)| cal.interval(*pred, 0.9).contains(*truth))
        .count();
    let empirical = covered as f64 / holdout.len() as f64;
    assert!(
        (empirical - 0.9).abs() <= 0.03,
        "biased model: empirical coverage {empirical:.4}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Raising coverage never narrows the interval, and every interval
    // stays ordered, for arbitrary score samples and points.
    #[test]
    fn intervals_are_monotone_in_coverage(
        raw_scores in proptest::collection::vec(1u32..4_000_000, 1..200),
        point_milli in 1u64..10_000_000,
        cov_a_pct in 0u32..100,
        cov_b_pct in 0u32..100,
    ) {
        let scores: Vec<f64> = raw_scores.iter().map(|&s| s as f64 / 1000.0).collect();
        let cal = ConformalCalibrator::from_scores(scores);
        let point = point_milli as f64 / 1000.0;
        let (lo_cov, hi_cov) = if cov_a_pct <= cov_b_pct {
            (cov_a_pct, cov_b_pct)
        } else {
            (cov_b_pct, cov_a_pct)
        };
        let narrow = cal.interval(point, lo_cov as f64 / 100.0);
        let wide = cal.interval(point, hi_cov as f64 / 100.0);
        prop_assert!(narrow.lo <= narrow.hi);
        prop_assert!(wide.lo <= wide.hi);
        prop_assert!(wide.lo <= narrow.lo, "lo must move down: {} -> {}", narrow.lo, wide.lo);
        prop_assert!(wide.hi >= narrow.hi, "hi must move up: {} -> {}", narrow.hi, wide.hi);
        prop_assert!(wide.width() >= narrow.width());
    }
}
