//! Criterion bench behind Figure 4: one 2D-CNN retraining event per
//! transform type. Batch and epoch counts are reduced so the bench finishes
//! on one core; the *ordering* across transforms is the figure's result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prionn_core::{Prionn, PrionnConfig};
use prionn_text::TransformKind;
use prionn_workload::{Trace, TraceConfig, TracePreset};

fn bench_training(c: &mut Criterion) {
    // Micro-scale: a 32x32 grid and 8 jobs keep even the 128-channel
    // one-hot iteration around a second on a memory-bandwidth-starved
    // machine; the figure-scale comparison lives in `experiments fig4`.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 8));
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = trace.jobs.iter().map(|j| j.runtime_minutes()).collect();

    let mut group = c.benchmark_group("fig04_train_time_transform");
    group.sample_size(10);
    for kind in TransformKind::ALL {
        let cfg = PrionnConfig {
            transform: kind,
            predict_io: false,
            grid: (32, 32),
            base_width: 2,
            runtime_bins: 96,
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &cfg, |b, cfg| {
            let mut model = Prionn::new(cfg.clone(), &scripts).unwrap();
            b.iter(|| model.retrain(&scripts, &runtimes, &[], &[]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
