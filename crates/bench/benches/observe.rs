//! Observability overhead bench: `Gateway::predict` p50 latency with
//! request-scoped tracing + flight recording enabled versus disabled.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench observe`)
//! and writes `BENCH_observe.json` to the workspace root (override with
//! `BENCH_OBSERVE_OUT`). Flags:
//!
//! * `--smoke`   — fewer requests, for CI;
//! * `--enforce` — exit non-zero when the traced p50 exceeds the untraced
//!   p50 by more than 5% (the PR's acceptance ceiling).
//!
//! Method: one sequential client, batch size 1, no linger — the purest
//! per-request path, so the span-tree cost is not hidden inside batching
//! wait time. Both gateways serve identical weights (checkpoint handover)
//! and stay alive together; measurement rounds alternate traced/untraced
//! so clock drift and cache state cancel instead of biasing one side.

use prionn_core::{Prionn, PrionnConfig};
use prionn_observe::{FlightConfig, FlightRecorder, Tracer};
use prionn_serve::{Gateway, GatewayConfig};
use serde_json::json;
use std::time::{Duration, Instant};

fn corpus() -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..16 {
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -t 02:00:00\nmodule load mkl\nsrun ./short_app run{i}\n"
        ));
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 64\n#SBATCH -t 12:00:00\nmodule load big\nexport OMP_NUM_THREADS=4\nsrun ./long_app case{i}\nsync\n"
        ));
    }
    scripts
}

fn trained_model(scripts: &[String]) -> Prionn {
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    // A realistically sized serving model (the paper's grids are larger
    // still): the overhead ceiling is relative to real forward-pass work,
    // not a toy model whose forward is cheaper than a syscall.
    let cfg = PrionnConfig {
        grid: (32, 32),
        base_width: 4,
        runtime_bins: 64,
        predict_io: false,
        epochs: 1,
        batch_size: 32,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &refs).unwrap();
    let runtimes: Vec<f64> = (0..refs.len())
        .map(|i| if i % 2 == 0 { 100.0 } else { 700.0 })
        .collect();
    model.retrain(&refs, &runtimes, &[], &[]).unwrap();
    model
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// `reqs` sequential single-script predicts; returns per-request seconds.
fn drive(gw: &Gateway, scripts: &[String], reqs: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(reqs);
    for r in 0..reqs {
        let one = std::slice::from_ref(&scripts[r % scripts.len()]);
        let t = Instant::now();
        gw.predict(one).unwrap();
        lat.push(t.elapsed().as_secs_f64());
    }
    lat
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    // Many short alternating chunks: CPU-frequency phases and background
    // load hit both sides equally instead of biasing whichever side was
    // measured during the slow phase.
    let (rounds, reqs) = if smoke { (50, 20) } else { (100, 25) };
    let mode = if smoke { "smoke" } else { "full" };
    println!("observe bench ({mode} mode): {rounds} alternating rounds x {reqs} sequential requests per side");

    let scripts = corpus();
    let model = trained_model(&scripts);
    let ck_path = std::env::temp_dir().join("prionn_bench_observe.ck");
    model.save(&ck_path).unwrap();

    let base_cfg = GatewayConfig {
        replicas: 1,
        max_batch: 1,
        max_wait: Duration::from_micros(100),
        ..GatewayConfig::default()
    };
    let gw_off = Gateway::spawn_from_checkpoint(&ck_path, base_cfg.clone()).unwrap();
    let recorder = FlightRecorder::new(FlightConfig::default());
    let gw_on = Gateway::spawn_from_checkpoint(
        &ck_path,
        GatewayConfig {
            tracer: Some(Tracer::new(&recorder)),
            ..base_cfg
        },
    )
    .unwrap();
    let _ = std::fs::remove_file(&ck_path);

    // Warm both replicas (first batch pays one-time scratch setup).
    drive(&gw_off, &scripts, 20);
    drive(&gw_on, &scripts, 20);

    let (mut lat_off, mut lat_on) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        lat_off.extend(drive(&gw_off, &scripts, reqs));
        lat_on.extend(drive(&gw_on, &scripts, reqs));
    }
    gw_off.shutdown();
    gw_on.shutdown();
    lat_off.sort_by(|a, b| a.total_cmp(b));
    lat_on.sort_by(|a, b| a.total_cmp(b));

    let p50_off = percentile(&lat_off, 0.50) * 1e3;
    let p50_on = percentile(&lat_on, 0.50) * 1e3;
    let p95_off = percentile(&lat_off, 0.95) * 1e3;
    let p95_on = percentile(&lat_on, 0.95) * 1e3;
    let overhead_pct = (p50_on / p50_off - 1.0) * 100.0;
    let spans_recorded = recorder.snapshot().len();

    println!("  tracing disabled: p50 {p50_off:.3} ms  p95 {p95_off:.3} ms");
    println!(
        "  tracing enabled:  p50 {p50_on:.3} ms  p95 {p95_on:.3} ms  \
         ({spans_recorded} spans live in rings, {} dropped)",
        recorder.dropped()
    );
    println!("  p50 overhead: {overhead_pct:+.2}%");

    let report = json!({
        "bench": "observe",
        "mode": mode,
        "rounds": rounds,
        "requests_per_round": reqs,
        "tracing_disabled": { "p50_ms": p50_off, "p95_ms": p95_off },
        "tracing_enabled": { "p50_ms": p50_on, "p95_ms": p95_on },
        "p50_overhead_pct": overhead_pct,
        "ceiling_pct": 5.0,
    });
    let out = std::env::var("BENCH_OBSERVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_observe.json").into()
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        if overhead_pct > 5.0 {
            eprintln!(
                "FAIL: traced p50 {p50_on:.3} ms is {overhead_pct:.2}% over untraced \
                 {p50_off:.3} ms (> 5% ceiling)"
            );
            std::process::exit(1);
        }
        println!("enforce: p50 overhead {overhead_pct:+.2}% <= 5% OK");
    }
}
