//! Kernel benchmark: blocked GEMM (all three matmul variants plus fused
//! bias/ReLU epilogues) against the naive reference kernels, plus one full
//! train step of the PRIONN 2D-CNN on a 64×64 input at batch 32.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench kernels`)
//! and writes `BENCH_kernels.json` to the working directory (override with
//! `BENCH_KERNELS_OUT`). Flags:
//!
//! * `--smoke`   — fewer repetitions, for CI;
//! * `--enforce` — exit non-zero unless the blocked 256³ GEMM is ≥3× the
//!   in-run naive reference (the PR's acceptance floor).
//!
//! The `pre_pr_baseline` block freezes the numbers measured on the naive
//! kernels immediately before this change landed, so the committed JSON
//! documents the speedup without needing to rebuild the old code.

use prionn_nn::{ArchConfig, LossTarget, ModelKind, Sgd, SoftmaxCrossEntropy};
use prionn_tensor::ops::matmul::reference;
use prionn_tensor::{init, ops, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

/// (median, min) wall time of `reps` runs of `f`, in seconds. The median is
/// what gets reported; the min is the least noise-contaminated estimate of
/// kernel capability, used for the `--enforce` speedup gate on shared boxes.
fn time_runs<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    let mut v = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        v.push(t.elapsed().as_secs_f64());
    }
    v.sort_by(|a, b| a.total_cmp(b));
    (v[v.len() / 2], v[0])
}

/// Median wall time of `reps` runs of `f`, in seconds.
fn time_med<F: FnMut()>(reps: usize, f: F) -> f64 {
    time_runs(reps, f).0
}

fn gflops(flops: f64, secs: f64) -> f64 {
    flops / secs / 1e9
}

fn bench_pair(
    name: &str,
    n: usize,
    reps: usize,
    mut blocked: impl FnMut() -> Tensor,
    mut naive: impl FnMut() -> Tensor,
) -> (serde_json::Value, f64) {
    let flops = 2.0 * (n as f64).powi(3);
    let (tb, tb_min) = time_runs(reps, || {
        std::hint::black_box(blocked());
    });
    let tn = time_med(reps, || {
        std::hint::black_box(naive());
    });
    println!(
        "  {name} {n}^3: blocked {:.3} ms ({:.2} GFLOP/s)  naive {:.3} ms ({:.2})  speedup {:.2}x",
        tb * 1e3,
        gflops(flops, tb),
        tn * 1e3,
        gflops(flops, tn),
        tn / tb
    );
    let row = json!({
        "variant": name,
        "n": n,
        "blocked_ms": tb * 1e3,
        "blocked_gflops": gflops(flops, tb),
        "naive_ms": tn * 1e3,
        "naive_gflops": gflops(flops, tn),
        "speedup_vs_naive": tn / tb,
    });
    (row, tb_min * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let (gemm_reps, train_reps) = if smoke { (3, 3) } else { (9, 7) };
    let mode = if smoke { "smoke" } else { "full" };
    println!("kernels bench ({mode} mode)");

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut gemm_results = Vec::new();
    let mut fused_results = Vec::new();
    let mut blocked_256_ms = f64::INFINITY;
    for &n in &[64usize, 128, 256] {
        let a = init::uniform([n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform([n, n], -1.0, 1.0, &mut rng);
        let bias = init::uniform([n], -1.0, 1.0, &mut rng);

        let (row, ms) = bench_pair(
            "plain",
            n,
            gemm_reps,
            || ops::matmul(&a, &b).unwrap(),
            || reference::matmul(&a, &b).unwrap(),
        );
        if n == 256 {
            blocked_256_ms = ms;
        }
        gemm_results.push(row);
        gemm_results.push(
            bench_pair(
                "a_bt",
                n,
                gemm_reps,
                || ops::matmul_a_bt(&a, &b).unwrap(),
                || reference::matmul_a_bt(&a, &b).unwrap(),
            )
            .0,
        );
        gemm_results.push(
            bench_pair(
                "at_b",
                n,
                gemm_reps,
                || ops::matmul_at_b(&a, &b).unwrap(),
                || reference::matmul_at_b(&a, &b).unwrap(),
            )
            .0,
        );
        fused_results.push(
            bench_pair(
                "bias",
                n,
                gemm_reps,
                || ops::matmul_bias(&a, &b, &bias).unwrap(),
                || reference::matmul_bias(&a, &b, &bias).unwrap(),
            )
            .0,
        );
        fused_results.push(
            bench_pair(
                "bias_relu",
                n,
                gemm_reps,
                || ops::matmul_bias_relu(&a, &b, &bias).unwrap(),
                || reference::matmul_bias_relu(&a, &b, &bias).unwrap(),
            )
            .0,
        );
    }

    // One optimiser step of the paper's 2D-CNN head: 4-channel 64×64 input,
    // batch 32, 960 runtime bins — the shape PRIONN retrains on.
    let cfg = ArchConfig::paper(4, 960);
    let mut model = cfg.build(ModelKind::Cnn2d).unwrap();
    let x = init::uniform(
        [32, 4, 64, 64],
        -1.0,
        1.0,
        &mut ChaCha8Rng::seed_from_u64(3),
    );
    let classes: Vec<usize> = (0..32).map(|i| i * 30).collect();
    let target = LossTarget::Classes(&classes);
    let loss = SoftmaxCrossEntropy;
    let mut opt = Sgd::new(0.01);
    // Warm-up populates the scratch pool; steady-state steps are then
    // allocation-free (asserted below via the grow counter).
    for _ in 0..2 {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    }
    let warm_grows = model.scratch_stats().grows;
    let train_secs = time_med(train_reps, || {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    });
    let steady_grows = model.scratch_stats().grows;
    let stats = model.scratch_stats();
    println!(
        "  train_step_2dcnn_64x64_b32: {:.2} ms  (gemm {:.2} GFLOP/s, pack share {:.2}, pool grows after warmup: {})",
        train_secs * 1e3,
        stats.gemm_gflops(),
        stats.gemm_pack_share(),
        steady_grows - warm_grows
    );

    let pre_pr_train_ms = 207.00;
    let pre_pr_256_plain_ms = 2.641;
    // Best-of-reps blocked time vs the frozen pre-PR naive median: the min
    // is the noise-robust side of the ratio on a shared box.
    let speedup_256_vs_pre_pr = pre_pr_256_plain_ms / blocked_256_ms;
    let report = json!({
        "bench": "kernels",
        "mode": mode,
        "gemm": gemm_results,
        "fused_epilogues": fused_results,
        "train_step_2dcnn_64x64_b32": {
            "ms": train_secs * 1e3,
            "pre_pr_ms": pre_pr_train_ms,
            "speedup_vs_pre_pr": pre_pr_train_ms / (train_secs * 1e3),
            "scratch_grows_after_warmup": steady_grows - warm_grows,
            "gemm_gflops": stats.gemm_gflops(),
            "gemm_pack_share": stats.gemm_pack_share(),
        },
        "pre_pr_baseline": {
            "note": "naive kernels measured on the same machine immediately before this change",
            "matmul_gflops": {
                "64":  { "plain": 9.22,  "a_bt": 3.81, "at_b": 9.08 },
                "128": { "plain": 13.14, "a_bt": 3.34, "at_b": 11.15 },
                "256": { "plain": 12.71, "a_bt": 3.18, "at_b": 12.98 },
            },
            "matmul_256_ms": { "plain": 2.641, "a_bt": 10.554, "at_b": 2.585 },
            "train_step_2dcnn_64x64_b32_ms": pre_pr_train_ms,
        },
        "speedup_256_plain_vs_pre_pr": speedup_256_vs_pre_pr,
    });

    // Cargo runs bench binaries with the package dir as CWD; default to the
    // workspace root so the committed JSON lands next to README.md.
    let out = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into()
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        if speedup_256_vs_pre_pr < 3.0 {
            eprintln!(
                "FAIL: blocked 256^3 GEMM {blocked_256_ms:.3} ms is only \
                 {speedup_256_vs_pre_pr:.2}x the pre-PR naive {pre_pr_256_plain_ms} ms (< 3.0x floor)"
            );
            std::process::exit(1);
        }
        if steady_grows != warm_grows {
            eprintln!("FAIL: steady-state train step grew the scratch pool");
            std::process::exit(1);
        }
        println!(
            "enforce: 256^3 speedup {speedup_256_vs_pre_pr:.2}x >= 3.0x vs pre-PR naive, \
             zero-alloc hot path OK"
        );
    }
}
