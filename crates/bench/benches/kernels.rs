//! Micro-benchmarks for the tensor kernels underpinning everything else:
//! the three matmul variants and im2col/col2im.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prionn_tensor::ops::{self, Conv2dGeom};
use prionn_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = prionn_tensor::init::uniform([n, n], -1.0, 1.0, &mut rng);
        let b = prionn_tensor::init::uniform([n, n], -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bch, _| {
            bch.iter(|| ops::matmul(&a, &b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bch, _| {
            bch.iter(|| ops::matmul_a_bt(&a, &b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("at_b", n), &n, |bch, _| {
            bch.iter(|| ops::matmul_at_b(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = Conv2dGeom::new(4, 64, 64, 3, 3, 1, 1).unwrap();
    let x = prionn_tensor::init::uniform([4 * 64 * 64], -1.0, 1.0, &mut rng);
    let cols = ops::im2col(x.as_slice(), &g).unwrap();
    let grad = Tensor::full([g.col_rows(), g.col_cols()], 0.5);

    let mut group = c.benchmark_group("im2col");
    group.sample_size(30);
    group.bench_function("im2col_4x64x64_k3", |b| {
        b.iter(|| ops::im2col(x.as_slice(), &g).unwrap());
    });
    group.bench_function("col2im_4x64x64_k3", |b| {
        b.iter(|| ops::col2im(&grad, &g).unwrap());
    });
    let _ = cols;
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_im2col);
criterion_main!(benches);
