//! Kernel benchmark: blocked GEMM (all three matmul variants plus fused
//! bias/ReLU epilogues) against the naive reference kernels, a per-tier
//! SIMD dispatch sweep, the int8 quantized GEMM, and one full train step
//! of the PRIONN 2D-CNN on a 64×64 input at batch 32.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench kernels`)
//! and writes `BENCH_kernels.json` to the working directory (override with
//! `BENCH_KERNELS_OUT`). Flags:
//!
//! * `--smoke`   — fewer repetitions, for CI;
//! * `--enforce` — exit non-zero unless every perf gate holds (see
//!   `docs/PERFORMANCE.md` for the gate table):
//!   1. blocked 256³ GEMM ≥ 3× the frozen pre-blocking naive baseline;
//!   2. on AVX2-capable hosts, the best SIMD tier at 256³ ≥ 1.8× the
//!      frozen pre-SIMD blocked baseline;
//!   3. blocked ≥ naive (min-of-reps) at every measured size — the n=64
//!      regression guard;
//!   4. the steady-state train step stays allocation-free.
//!
//! The `pre_pr_baseline` and `pre_simd_baseline` blocks freeze numbers
//! measured on this machine immediately before the respective changes
//! landed, so the committed JSON documents each speedup without rebuilding
//! old code.

use prionn_nn::{ArchConfig, LossTarget, ModelKind, Sgd, SoftmaxCrossEntropy};
use prionn_tensor::ops::gemm::{force_kernel_tier, kernel_tier, KernelTier};
use prionn_tensor::ops::matmul::reference;
use prionn_tensor::{init, ops, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

/// (median, min) wall time of `reps` runs of `f`, in seconds. The median is
/// what gets reported; the min is the least noise-contaminated estimate of
/// kernel capability, used for the `--enforce` speedup gates on shared
/// boxes.
fn time_runs<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    let mut v = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        v.push(t.elapsed().as_secs_f64());
    }
    v.sort_by(|a, b| a.total_cmp(b));
    (v[v.len() / 2], v[0])
}

/// Median wall time of `reps` runs of `f`, in seconds.
fn time_med<F: FnMut()>(reps: usize, f: F) -> f64 {
    time_runs(reps, f).0
}

fn gflops(flops: f64, secs: f64) -> f64 {
    flops / secs / 1e9
}

/// One blocked-vs-naive pair. Returns the JSON row plus the min-of-reps
/// times (ms) of both sides for the `blocked >= naive` regression gate.
fn bench_pair(
    name: &str,
    n: usize,
    reps: usize,
    mut blocked: impl FnMut() -> Tensor,
    mut naive: impl FnMut() -> Tensor,
) -> (serde_json::Value, f64, f64) {
    let flops = 2.0 * (n as f64).powi(3);
    let (tb, tb_min) = time_runs(reps, || {
        std::hint::black_box(blocked());
    });
    let (tn, tn_min) = time_runs(reps, || {
        std::hint::black_box(naive());
    });
    println!(
        "  {name} {n}^3: blocked {:.3} ms ({:.2} GFLOP/s)  naive {:.3} ms ({:.2})  speedup {:.2}x",
        tb * 1e3,
        gflops(flops, tb),
        tn * 1e3,
        gflops(flops, tn),
        tn / tb
    );
    let row = json!({
        "variant": name,
        "n": n,
        "kernel_tier": kernel_tier().name(),
        "blocked_ms": tb * 1e3,
        "blocked_gflops": gflops(flops, tb),
        "naive_ms": tn * 1e3,
        "naive_gflops": gflops(flops, tn),
        "speedup_vs_naive": tn / tb,
    });
    (row, tb_min * 1e3, tn_min * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let (gemm_reps, train_reps) = if smoke { (3, 3) } else { (9, 7) };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "kernels bench ({mode} mode, dispatched tier: {})",
        kernel_tier().name()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut gemm_results = Vec::new();
    let mut fused_results = Vec::new();
    let mut blocked_256_ms = f64::INFINITY;
    // (label, n, blocked_min_ms, naive_min_ms) for the regression gate.
    let mut pair_mins: Vec<(String, usize, f64, f64)> = Vec::new();
    for &n in &[64usize, 128, 256] {
        let a = init::uniform([n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform([n, n], -1.0, 1.0, &mut rng);
        let bias = init::uniform([n], -1.0, 1.0, &mut rng);

        let (row, bm, nm) = bench_pair(
            "plain",
            n,
            gemm_reps,
            || ops::matmul(&a, &b).unwrap(),
            || reference::matmul(&a, &b).unwrap(),
        );
        if n == 256 {
            blocked_256_ms = bm;
        }
        pair_mins.push(("plain".into(), n, bm, nm));
        gemm_results.push(row);
        let (row, bm, nm) = bench_pair(
            "a_bt",
            n,
            gemm_reps,
            || ops::matmul_a_bt(&a, &b).unwrap(),
            || reference::matmul_a_bt(&a, &b).unwrap(),
        );
        pair_mins.push(("a_bt".into(), n, bm, nm));
        gemm_results.push(row);
        let (row, bm, nm) = bench_pair(
            "at_b",
            n,
            gemm_reps,
            || ops::matmul_at_b(&a, &b).unwrap(),
            || reference::matmul_at_b(&a, &b).unwrap(),
        );
        pair_mins.push(("at_b".into(), n, bm, nm));
        gemm_results.push(row);
        let (row, bm, nm) = bench_pair(
            "bias",
            n,
            gemm_reps,
            || ops::matmul_bias(&a, &b, &bias).unwrap(),
            || reference::matmul_bias(&a, &b, &bias).unwrap(),
        );
        pair_mins.push(("bias".into(), n, bm, nm));
        fused_results.push(row);
        let (row, bm, nm) = bench_pair(
            "bias_relu",
            n,
            gemm_reps,
            || ops::matmul_bias_relu(&a, &b, &bias).unwrap(),
            || reference::matmul_bias_relu(&a, &b, &bias).unwrap(),
        );
        pair_mins.push(("bias_relu".into(), n, bm, nm));
        fused_results.push(row);
    }

    // Per-tier sweep: force each dispatch tier in turn and measure the
    // plain matmul at 256³ (packed path) and 64³ (skip-packing small
    // path). Tiers the host cannot run degrade at dispatch time; those are
    // reported as skipped rather than mislabelled.
    let mut tier_results = Vec::new();
    let mut simd_256_min_ms = f64::INFINITY;
    for tier in [
        KernelTier::Avx512,
        KernelTier::Avx2,
        KernelTier::Autovec,
        KernelTier::Portable,
    ] {
        force_kernel_tier(Some(tier));
        let effective = kernel_tier();
        if effective != tier {
            println!(
                "  tier {}: unavailable on this host (degrades to {})",
                tier.name(),
                effective.name()
            );
            tier_results.push(json!({
                "tier": tier.name(),
                "available": false,
                "degrades_to": effective.name(),
            }));
            continue;
        }
        let mut row = serde_json::Map::new();
        row.insert("tier".into(), json!(tier.name()));
        row.insert("available".into(), json!(true));
        for &n in &[64usize, 256] {
            let a = init::uniform([n, n], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(5));
            let b = init::uniform([n, n], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(6));
            let flops = 2.0 * (n as f64).powi(3);
            let (med, min) = time_runs(gemm_reps, || {
                std::hint::black_box(ops::matmul(&a, &b).unwrap());
            });
            println!(
                "  tier {} {n}^3: {:.3} ms ({:.2} GFLOP/s)",
                tier.name(),
                med * 1e3,
                gflops(flops, med)
            );
            row.insert(format!("matmul_{n}_ms"), json!(med * 1e3));
            row.insert(format!("matmul_{n}_gflops"), json!(gflops(flops, med)));
            if n == 256 && matches!(tier, KernelTier::Avx512 | KernelTier::Avx2) {
                simd_256_min_ms = simd_256_min_ms.min(min * 1e3);
            }
        }
        tier_results.push(serde_json::Value::Object(row));
    }
    force_kernel_tier(None);

    // Int8 quantized GEMM (the serve-fleet inference path) against the f32
    // blocked kernel at the same shapes. "GFLOP/s" counts the same 2·n³
    // useful multiply-adds either way, so the ratio is a direct
    // throughput-per-answer comparison.
    let mut qgemm_results = Vec::new();
    for &n in &[64usize, 256] {
        let w = init::uniform([n, n], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(7));
        let x = init::uniform([n, n], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(8));
        let qw = ops::QuantizedWeights::quantize(w.as_slice(), n, n);
        let (qa, aq) = ops::quantize_activations(x.as_slice());
        let mut out = vec![0.0f32; n * n];
        let flops = 2.0 * (n as f64).powi(3);
        let (tq, _) = time_runs(gemm_reps, || {
            ops::qgemm(&qa, aq, n, &qw, None, false, &mut out);
            std::hint::black_box(&out);
        });
        let (tf, _) = time_runs(gemm_reps, || {
            std::hint::black_box(ops::matmul(&x, &w).unwrap());
        });
        println!(
            "  int8 {n}^3: {:.3} ms ({:.2} GFLOP/s)  f32 {:.3} ms  ratio {:.2}x, packed {} bytes",
            tq * 1e3,
            gflops(flops, tq),
            tf * 1e3,
            tf / tq,
            qw.packed_bytes()
        );
        qgemm_results.push(json!({
            "n": n,
            "kernel_tier": kernel_tier().name(),
            "int8_ms": tq * 1e3,
            "int8_gflops": gflops(flops, tq),
            "f32_ms": tf * 1e3,
            "speedup_vs_f32": tf / tq,
            "packed_bytes": qw.packed_bytes(),
            "f32_bytes": n * n * 4,
        }));
    }

    // One optimiser step of the paper's 2D-CNN head: 4-channel 64×64 input,
    // batch 32, 960 runtime bins — the shape PRIONN retrains on.
    let cfg = ArchConfig::paper(4, 960);
    let mut model = cfg.build(ModelKind::Cnn2d).unwrap();
    let x = init::uniform(
        [32, 4, 64, 64],
        -1.0,
        1.0,
        &mut ChaCha8Rng::seed_from_u64(3),
    );
    let classes: Vec<usize> = (0..32).map(|i| i * 30).collect();
    let target = LossTarget::Classes(&classes);
    let loss = SoftmaxCrossEntropy;
    let mut opt = Sgd::new(0.01);
    // Warm-up populates the scratch pool; steady-state steps are then
    // allocation-free (asserted below via the grow counter).
    for _ in 0..2 {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    }
    let warm_grows = model.scratch_stats().grows;
    let train_secs = time_med(train_reps, || {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    });
    let steady_grows = model.scratch_stats().grows;
    let stats = model.scratch_stats();
    println!(
        "  train_step_2dcnn_64x64_b32: {:.2} ms  (gemm {:.2} GFLOP/s, pack share {:.2}, pool grows after warmup: {})",
        train_secs * 1e3,
        stats.gemm_gflops(),
        stats.gemm_pack_share(),
        steady_grows - warm_grows
    );

    let pre_pr_train_ms = 207.00;
    let pre_pr_256_plain_ms = 2.641;
    // Pre-SIMD baseline: the autovectorized blocked kernel at 256³,
    // measured on this machine immediately before the explicit AVX2/AVX-512
    // microkernels landed. The SIMD gate is anchored here, not on a
    // same-run autovec measurement, so dispatch regressions (e.g. the
    // microkernel silently falling back) fail loudly.
    let pre_simd_256_blocked_ms = 0.734;
    let pre_simd_256_blocked_gflops = 45.68;
    let simd_available =
        kernel_tier() != KernelTier::Autovec && kernel_tier() != KernelTier::Portable;
    let simd_speedup_256 = pre_simd_256_blocked_ms / simd_256_min_ms;
    // Best-of-reps blocked time vs the frozen pre-PR naive median: the min
    // is the noise-robust side of the ratio on a shared box.
    let speedup_256_vs_pre_pr = pre_pr_256_plain_ms / blocked_256_ms;
    let report = json!({
        "bench": "kernels",
        "mode": mode,
        "dispatched_tier": kernel_tier().name(),
        "gemm": gemm_results,
        "fused_epilogues": fused_results,
        "kernel_tiers": tier_results,
        "int8_gemm": qgemm_results,
        "train_step_2dcnn_64x64_b32": {
            "ms": train_secs * 1e3,
            "pre_pr_ms": pre_pr_train_ms,
            "speedup_vs_pre_pr": pre_pr_train_ms / (train_secs * 1e3),
            "scratch_grows_after_warmup": steady_grows - warm_grows,
            "gemm_gflops": stats.gemm_gflops(),
            "gemm_pack_share": stats.gemm_pack_share(),
        },
        "pre_pr_baseline": {
            "note": "naive kernels measured on the same machine immediately before blocking landed",
            "matmul_gflops": {
                "64":  { "plain": 9.22,  "a_bt": 3.81, "at_b": 9.08 },
                "128": { "plain": 13.14, "a_bt": 3.34, "at_b": 11.15 },
                "256": { "plain": 12.71, "a_bt": 3.18, "at_b": 12.98 },
            },
            "matmul_256_ms": { "plain": 2.641, "a_bt": 10.554, "at_b": 2.585 },
            "train_step_2dcnn_64x64_b32_ms": pre_pr_train_ms,
        },
        "pre_simd_baseline": {
            "note": "autovec blocked kernel measured on the same machine immediately before the SIMD microkernels landed",
            "matmul_256_ms": pre_simd_256_blocked_ms,
            "matmul_256_gflops": pre_simd_256_blocked_gflops,
        },
        "speedup_256_plain_vs_pre_pr": speedup_256_vs_pre_pr,
        "simd_speedup_256_vs_pre_simd": if simd_available { json!(simd_speedup_256) } else { json!(null) },
    });

    // Cargo runs bench binaries with the package dir as CWD; default to the
    // workspace root so the committed JSON lands next to README.md.
    let out = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into()
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        let mut failed = false;
        if speedup_256_vs_pre_pr < 3.0 {
            eprintln!(
                "FAIL: blocked 256^3 GEMM {blocked_256_ms:.3} ms is only \
                 {speedup_256_vs_pre_pr:.2}x the pre-PR naive {pre_pr_256_plain_ms} ms (< 3.0x floor)"
            );
            failed = true;
        }
        if simd_available {
            if simd_speedup_256 < 1.8 {
                eprintln!(
                    "FAIL: best SIMD tier 256^3 GEMM {simd_256_min_ms:.3} ms is only \
                     {simd_speedup_256:.2}x the pre-SIMD blocked {pre_simd_256_blocked_ms} ms (< 1.8x floor)"
                );
                failed = true;
            } else {
                println!(
                    "enforce: SIMD 256^3 speedup {simd_speedup_256:.2}x >= 1.8x vs pre-SIMD blocked"
                );
            }
        } else {
            println!("enforce: no AVX2 on this host, SIMD gate skipped");
        }
        // Regression guard: min-of-reps blocked must beat min-of-reps
        // naive at every measured size (this caught the n=64 small-matrix
        // regression the skip-packing path fixed).
        for (name, n, bm, nm) in &pair_mins {
            if bm > nm {
                eprintln!(
                    "FAIL: {name} {n}^3 blocked min {bm:.3} ms slower than naive min {nm:.3} ms"
                );
                failed = true;
            }
        }
        if steady_grows != warm_grows {
            eprintln!("FAIL: steady-state train step grew the scratch pool");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: 256^3 speedup {speedup_256_vs_pre_pr:.2}x >= 3.0x vs pre-PR naive, \
             blocked >= naive at every size, zero-alloc hot path OK"
        );
    }
}
