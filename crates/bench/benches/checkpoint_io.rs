//! Criterion bench for the persistence subsystem: serialising a trained
//! predictor to its checkpoint container, parsing it back, and the full
//! save/load disk round trip. These set the budget for the service's
//! periodic snapshots — a snapshot runs on the worker thread between
//! retrains, so it must stay far cheaper than one retraining event.
//!
//! The `predict` group measures telemetry overhead on the hot path: the
//! same forward pass with and without an attached registry. The budget is
//! ≤5% — see the overhead discussion in `DESIGN.md` §10.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prionn_core::{Prionn, PrionnConfig};
use prionn_store::Checkpoint;
use prionn_telemetry::Telemetry;
use prionn_workload::{Trace, TraceConfig, TracePreset};

fn trained_model() -> Prionn {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 80));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let scripts: Vec<&str> = jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_minutes()).collect();
    let reads: Vec<f64> = jobs.iter().map(|j| j.bytes_read).collect();
    let writes: Vec<f64> = jobs.iter().map(|j| j.bytes_written).collect();
    let cfg = PrionnConfig {
        base_width: 2,
        runtime_bins: 96,
        io_bins: 24,
        epochs: 1,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &scripts).unwrap();
    model.retrain(&scripts, &runtimes, &reads, &writes).unwrap();
    model
}

fn bench_checkpoint(c: &mut Criterion) {
    let model = trained_model();
    let bytes = model.to_checkpoint().unwrap().to_bytes();
    let path = std::env::temp_dir().join(format!("prionn-bench-{}.ckpt", std::process::id()));

    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_function("encode", |b| {
        b.iter(|| model.to_checkpoint().unwrap().to_bytes());
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            let ck = Checkpoint::from_bytes(&bytes).unwrap();
            Prionn::from_checkpoint(&ck).unwrap()
        });
    });
    group.bench_function("save_to_disk", |b| {
        b.iter(|| model.save(&path).unwrap());
    });
    group.bench_function("load_from_disk", |b| {
        b.iter(|| Prionn::load(&path).unwrap());
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_predict_telemetry_overhead(c: &mut Criterion) {
    let mut model = trained_model();
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 40));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let scripts: Vec<&str> = jobs.iter().take(16).map(|j| j.script.as_str()).collect();

    let mut group = c.benchmark_group("predict");
    group.sample_size(20);
    group.throughput(Throughput::Elements(scripts.len() as u64));

    group.bench_function("uninstrumented", |b| {
        b.iter(|| model.predict(&scripts).unwrap());
    });
    let registry = Telemetry::default();
    model.set_telemetry(&registry);
    group.bench_function("instrumented", |b| {
        b.iter(|| model.predict(&scripts).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint, bench_predict_telemetry_overhead);
criterion_main!(benches);
