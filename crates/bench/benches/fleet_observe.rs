//! Fleet-plane overhead bench: router-path predict latency with
//! cross-shard trace propagation enabled versus disabled, over real TCP
//! against the same observed 2-shard fleet.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench
//! fleet_observe`) and writes `BENCH_fleet_observe.json` to the
//! workspace root (override with `BENCH_FLEET_OBSERVE_OUT`). Flags:
//!
//! * `--smoke`   — fewer requests, for CI;
//! * `--enforce` — exit non-zero when the traced p50 exceeds the
//!   untraced p50 by more than 5% (the acceptance ceiling for the
//!   observability plane), or when the collector cannot scrape and
//!   merge both shards.
//!
//! Method mirrors the observe bench: both routers stay alive against
//! the *same* shards, and measurement rounds alternate traced/untraced
//! so CPU-frequency phases and background load cancel instead of
//! biasing one side. The traced side pays the full plane: router span
//! tree, trace-context bytes on the wire, shard-side strip + adopt, and
//! shard-local span recording (the fleet is spawned observed).

use std::time::{Duration, Instant};

use prionn_fleet::router::{Router, RouterConfig};
use prionn_fleet::testkit::{demo_corpus, LocalFleet, ROUTER_TRACE_NAMESPACE};
use prionn_observe::{
    CollectorConfig, FleetCollector, FlightConfig, FlightRecorder, ShardTarget, Tracer,
};
use prionn_telemetry::Telemetry;
use serde_json::json;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// `reqs` sequential single-script predicts; returns per-request seconds.
fn drive(router: &Router, scripts: &[String], reqs: usize, seed: u64) -> Vec<f64> {
    let mut lat = Vec::with_capacity(reqs);
    for r in 0..reqs {
        let user = (seed + r as u64).wrapping_mul(2_654_435_761) % 100_000;
        let one = std::slice::from_ref(&scripts[r % scripts.len()]);
        let t = Instant::now();
        router.predict(user, one).unwrap();
        lat.push(t.elapsed().as_secs_f64());
    }
    lat
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let (rounds, reqs) = if smoke { (50, 20) } else { (100, 25) };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "fleet_observe bench ({mode} mode): {rounds} alternating rounds x {reqs} requests per side"
    );

    let scripts = demo_corpus();
    let mut fleet = LocalFleet::spawn_observed(2);

    let router_cfg = |tracer: Option<Tracer>| RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(100),
        tracer,
        ..RouterConfig::for_endpoints(fleet.endpoints())
    };
    let router_off = Router::new(router_cfg(None));
    let recorder = FlightRecorder::new(FlightConfig::default());
    let router_on = Router::new(router_cfg(Some(Tracer::with_namespace(
        &recorder,
        ROUTER_TRACE_NAMESPACE,
    ))));

    // Warm both routers' connection pools and every shard's replica.
    drive(&router_off, &scripts, 20, 0);
    drive(&router_on, &scripts, 20, 0);

    let (mut lat_off, mut lat_on) = (Vec::new(), Vec::new());
    for round in 0..rounds {
        let seed = (round * reqs) as u64;
        lat_off.extend(drive(&router_off, &scripts, reqs, seed));
        lat_on.extend(drive(&router_on, &scripts, reqs, seed));
    }
    lat_off.sort_by(|a, b| a.total_cmp(b));
    lat_on.sort_by(|a, b| a.total_cmp(b));

    let p50_off = percentile(&lat_off, 0.50) * 1e3;
    let p50_on = percentile(&lat_on, 0.50) * 1e3;
    let p95_off = percentile(&lat_off, 0.95) * 1e3;
    let p95_on = percentile(&lat_on, 0.95) * 1e3;
    let overhead_pct = (p50_on / p50_off - 1.0) * 100.0;
    let spans_recorded = recorder.snapshot().len();

    println!("  tracing disabled: p50 {p50_off:.3} ms  p95 {p95_off:.3} ms");
    println!(
        "  tracing enabled:  p50 {p50_on:.3} ms  p95 {p95_on:.3} ms  \
         ({spans_recorded} router spans live in rings)"
    );
    println!("  p50 overhead: {overhead_pct:+.2}%");

    // The collector must scrape and merge both shards off the same run.
    let collector = FleetCollector::new(CollectorConfig {
        shards: fleet
            .ops_endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, ops_addr)| ShardTarget {
                name: i.to_string(),
                ops_addr,
            })
            .collect(),
        telemetry: Some(Telemetry::new()),
        ..CollectorConfig::default()
    });
    let shards_scraped = collector.scrape_once();
    let merged = collector.merged_prometheus();
    let merged_has_predicts = merged.contains("serve_predict_seconds_count");
    println!(
        "  collector: scraped {shards_scraped}/2 shards, merged view {} bytes",
        merged.len()
    );
    collector.shutdown();
    drop(router_off);
    drop(router_on);
    fleet.shutdown();

    let report = json!({
        "bench": "fleet_observe",
        "mode": mode,
        "rounds": rounds,
        "requests_per_round": reqs,
        "tracing_disabled": { "p50_ms": p50_off, "p95_ms": p95_off },
        "tracing_enabled": { "p50_ms": p50_on, "p95_ms": p95_on },
        "p50_overhead_pct": overhead_pct,
        "ceiling_pct": 5.0,
        "router_spans_recorded": spans_recorded,
        "collector": {
            "shards_scraped": shards_scraped,
            "merged_has_predict_histogram": merged_has_predicts,
        },
    });
    let out = std::env::var("BENCH_FLEET_OBSERVE_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_fleet_observe.json"
        )
        .into()
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        if overhead_pct > 5.0 {
            eprintln!(
                "FAIL: traced p50 {p50_on:.3} ms is {overhead_pct:.2}% over untraced \
                 {p50_off:.3} ms (> 5% ceiling)"
            );
            std::process::exit(1);
        }
        if shards_scraped != 2 || !merged_has_predicts {
            eprintln!(
                "FAIL: collector merged {shards_scraped}/2 shards \
                 (predict histogram present: {merged_has_predicts})"
            );
            std::process::exit(1);
        }
        println!("enforce: p50 overhead {overhead_pct:+.2}% <= 5%, merged 2/2 shards OK");
    }
}
