//! Fleet bench: aggregate throughput of a sharded 4-gateway fleet over
//! the binary wire protocol versus a single gateway behind the same
//! protocol, plus the shard-kill availability drill.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench fleet`)
//! and writes `BENCH_fleet.json` to the workspace root (override with
//! `BENCH_FLEET_OUT`). Flags:
//!
//! * `--smoke`   — fewer requests, for CI;
//! * `--enforce` — exit non-zero unless the drill invariants hold
//!   (failover answers every request, typed sheds only, the fleet
//!   recovers after a shard kill) and — on hosts with ≥4 cores, where a
//!   4-shard fleet can actually run in parallel — the fleet sustains
//!   ≥2.5× the single-gateway aggregate throughput. On smaller hosts the
//!   scaling gate is recorded but not enforced (the same policy the
//!   kernels bench uses for its SIMD gate off-AVX2): all shards contend
//!   for one core, so the measurement would be noise, not scaling.
//!
//! Both sides serve identical weights from the shared demo checkpoint,
//! over real TCP connections with pipelined framing, so the comparison
//! isolates shard-level scale-out.

use std::sync::Arc;
use std::time::{Duration, Instant};

use prionn_fleet::router::{FleetError, Router, RouterConfig};
use prionn_fleet::testkit::{demo_corpus, LocalFleet};
use serde_json::json;

const FLEET_SHARDS: usize = 4;
/// Closed-loop clients per shard: enough in-flight requests to keep every
/// shard's batch fusion fed.
const CLIENTS_PER_SHARD: usize = 8;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct LoadStats {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    ok: u64,
    errors: u64,
}

/// Drive `total` requests through `router` from `clients` closed-loop
/// threads, users striding the full id space.
fn drive(router: &Router, scripts: &[String], total: usize, clients: usize) -> LoadStats {
    let started = Instant::now();
    let results: Vec<(u64, u64, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    let mut lat = Vec::with_capacity(total / clients + 1);
                    let mut r = c;
                    while r < total {
                        let user = (r as u64).wrapping_mul(2_654_435_761) % 100_000;
                        let one =
                            std::slice::from_ref(&scripts[(user % scripts.len() as u64) as usize]);
                        let t = Instant::now();
                        match router.predict(user, one) {
                            Ok(_) => {
                                ok += 1;
                                lat.push(t.elapsed().as_secs_f64());
                            }
                            Err(_) => errors += 1,
                        }
                        r += clients;
                    }
                    (ok, errors, lat)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let mut lat: Vec<f64> = Vec::new();
    let (mut ok, mut errors) = (0u64, 0u64);
    for (o, e, l) in results {
        ok += o;
        errors += e;
        lat.extend(l);
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    LoadStats {
        rps: ok as f64 / wall,
        p50_ms: percentile(&lat, 0.50) * 1e3,
        p99_ms: percentile(&lat, 0.99) * 1e3,
        ok,
        errors,
    }
}

fn router_for(endpoints: Vec<String>) -> Router {
    Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(100),
        ..RouterConfig::for_endpoints(endpoints)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let mode = if smoke { "smoke" } else { "full" };
    let total = if smoke { 4_000 } else { 20_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scripts = demo_corpus();
    println!("fleet bench ({mode} mode): {total} requests, {cores} cores");

    // Baseline: one gateway behind the wire protocol, loaded by the same
    // per-shard client count the fleet gets.
    let baseline_clients = CLIENTS_PER_SHARD;
    let single = LocalFleet::spawn(1);
    let router = router_for(single.endpoints());
    router.predict(0, &scripts[..1]).unwrap(); // warm
    let base = drive(&router, &scripts, total, baseline_clients);
    drop(router);
    drop(single);
    println!(
        "  single gateway: {:.0} req/s  p50 {:.2} ms  p99 {:.2} ms  ({} ok, {} errors)",
        base.rps, base.p50_ms, base.p99_ms, base.ok, base.errors
    );

    // Fleet: four shards, client count scaled with the shard count.
    let fleet_clients = CLIENTS_PER_SHARD * FLEET_SHARDS;
    let mut fleet = LocalFleet::spawn(FLEET_SHARDS);
    let router = Arc::new(router_for(fleet.endpoints()));
    router.predict(0, &scripts[..1]).unwrap();
    let agg = drive(&router, &scripts, total, fleet_clients);
    let scaling = agg.rps / base.rps;
    let efficiency = scaling / FLEET_SHARDS as f64;
    println!(
        "  {FLEET_SHARDS}-shard fleet: {:.0} req/s  p50 {:.2} ms  p99 {:.2} ms  ({} ok, {} errors)",
        agg.rps, agg.p50_ms, agg.p99_ms, agg.ok, agg.errors
    );
    println!("  scaling vs single gateway: {scaling:.2}x  (efficiency {efficiency:.2}/shard)");

    // Shard-kill drill: typed shed + failover answers everyone, then the
    // fleet recovers a replacement shard without wedging.
    let victim = FLEET_SHARDS - 1;
    let probes: Vec<u64> = (0..10_000u64)
        .filter(|&u| router.route(u) == Some(victim))
        .take(100)
        .collect();
    fleet.kill(victim);
    let mut failover_ok = 0u64;
    let mut failover_lost = 0u64;
    for &u in &probes {
        match router.predict(u, &scripts[..1]) {
            Ok(reply) if reply.shard != victim => failover_ok += 1,
            Ok(_) => failover_lost += 1,
            Err(FleetError::Rejected { .. }) => failover_lost += 1,
            Err(_) => failover_lost += 1,
        }
    }
    let endpoint = fleet.respawn(victim);
    router.set_endpoint(victim, &endpoint);
    router.mark_up(victim);
    let recover_deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < recover_deadline {
        if let Ok(reply) = router.predict(probes[0], &scripts[..1]) {
            if reply.shard == victim {
                recovered = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let drill_ok = failover_lost == 0 && failover_ok == probes.len() as u64 && recovered;
    println!(
        "  kill drill: {failover_ok}/{} failed over, recovered={recovered}",
        probes.len()
    );
    drop(router);
    fleet.shutdown();

    // The ≥2.5x scaling gate needs one core per shard to be meaningful;
    // below that every shard contends for the same CPU and aggregate
    // throughput cannot exceed the single-gateway ceiling.
    let scaling_gate_applies = cores >= FLEET_SHARDS;
    let scaling_floor = 2.5;

    let report = json!({
        "bench": "fleet",
        "mode": mode,
        "cores": cores,
        "requests": total,
        "single_gateway": {
            "clients": baseline_clients,
            "throughput_rps": base.rps,
            "p50_ms": base.p50_ms,
            "p99_ms": base.p99_ms,
            "errors": base.errors,
        },
        "fleet": {
            "shards": FLEET_SHARDS,
            "clients": fleet_clients,
            "throughput_rps": agg.rps,
            "p50_ms": agg.p50_ms,
            "p99_ms": agg.p99_ms,
            "errors": agg.errors,
        },
        "scaling_vs_single_gateway": scaling,
        "per_shard_efficiency": efficiency,
        "scaling_gate": {
            "floor": scaling_floor,
            "applies": scaling_gate_applies,
            "reason": if scaling_gate_applies {
                format!("{cores} cores >= {FLEET_SHARDS} shards: parallel scale-out measurable")
            } else {
                format!(
                    "{cores} cores < {FLEET_SHARDS} shards: shards contend for one CPU, \
                     scaling not measurable on this host"
                )
            },
        },
        "kill_drill": {
            "probes": probes.len(),
            "failed_over": failover_ok,
            "lost": failover_lost,
            "recovered": recovered,
            "ok": drill_ok,
        },
    });

    // Cargo runs bench binaries with the package dir as CWD; default to the
    // workspace root so the committed JSON lands next to README.md.
    let out = std::env::var("BENCH_FLEET_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").into());
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        if !drill_ok {
            eprintln!(
                "FAIL: kill drill lost {failover_lost} of {} requests (recovered={recovered})",
                probes.len()
            );
            std::process::exit(1);
        }
        if base.errors > 0 || agg.errors > 0 {
            eprintln!(
                "FAIL: load phases saw errors (single: {}, fleet: {})",
                base.errors, agg.errors
            );
            std::process::exit(1);
        }
        if scaling_gate_applies && scaling < scaling_floor {
            eprintln!(
                "FAIL: fleet {:.0} req/s is only {scaling:.2}x the single gateway {:.0} req/s \
                 (< {scaling_floor}x floor on a {cores}-core host)",
                agg.rps, base.rps
            );
            std::process::exit(1);
        }
        let gate_note = if scaling_gate_applies {
            format!("scaling {scaling:.2}x >= {scaling_floor}x")
        } else {
            format!("scaling gate skipped ({cores} cores < {FLEET_SHARDS} shards)")
        };
        println!("enforce: drill OK, zero lost requests, {gate_note}");
    }
}
