//! Ablation bench for the paper's training-window claim (§2.3): the cost of
//! one retraining event as a function of the training window (50–500 jobs).
//! The paper settled on 500 because larger windows cost more for little
//! accuracy gain; this bench regenerates the cost side of that curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prionn_core::{Prionn, PrionnConfig};
use prionn_workload::{Trace, TraceConfig, TracePreset};

fn bench_window(c: &mut Criterion) {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 200));
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = trace.jobs.iter().map(|j| j.runtime_minutes()).collect();

    let mut group = c.benchmark_group("ablation_training_window");
    group.sample_size(10);
    for &window in &[25usize, 50, 100, 200] {
        let cfg = PrionnConfig {
            predict_io: false,
            base_width: 2,
            runtime_bins: 96,
            epochs: 1,
            ..Default::default()
        };
        group.throughput(Throughput::Elements(window as u64));
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let mut model = Prionn::new(cfg.clone(), &scripts[..w]).unwrap();
            b.iter(|| {
                model
                    .retrain(&scripts[..w], &runtimes[..w], &[], &[])
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
