//! Criterion bench behind Figure 3: script→pixel transform time per
//! transform type.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prionn_text::{
    map_corpus_2d, BinaryTransform, CharTransform, OneHotTransform, SimpleTransform,
    Word2vecConfig, Word2vecTransform,
};
use prionn_workload::{Trace, TraceConfig, TracePreset};

fn bench_transforms(c: &mut Criterion) {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 100));
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let w2v = Word2vecTransform::train(&scripts[..20], &Word2vecConfig::default());

    let transforms: Vec<(&str, Box<dyn CharTransform>)> = vec![
        ("binary", Box::new(BinaryTransform)),
        ("simple", Box::new(SimpleTransform)),
        ("one-hot", Box::new(OneHotTransform)),
        ("word2vec", Box::new(w2v)),
    ];

    let mut group = c.benchmark_group("fig03_transform_time");
    group.sample_size(10);
    for (name, t) in &transforms {
        group.bench_with_input(BenchmarkId::from_parameter(name), t, |b, t| {
            b.iter(|| map_corpus_2d(&scripts, t.as_ref(), 64, 64).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
