//! Revision-loop bench: throughput of the in-flight re-prediction hot
//! path, split-conformal coverage against nominal, and the CPU-hours an
//! interval-driven kill policy reclaims on a simulated trace.
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench
//! revise`) and writes `BENCH_revise.json` to the workspace root
//! (override with `BENCH_REVISE_OUT`). Flags:
//!
//! * `--smoke`   — smaller trace and fewer hot-path iterations, for CI;
//! * `--enforce` — exit non-zero unless the run sustained ≥ 50k
//!   revisions/sec, held empirical coverage within ±3% of nominal at
//!   80/90/95%, terminated hopeless jobs early (saved CPU-hours > 0),
//!   and revised predictions beat submission-only predictions on mean
//!   relativeAccuracy for jobs past 25% progress.
//!
//! Method: a population of jobs whose runtime predictions carry
//! log-uniform multiplicative error (IO predictions tighter — volumes
//! are easier than durations). Phase 1 times the pure revise+interval
//! step. Phase 2 calibrates on half the population and scores coverage
//! on the held-out half. Phase 3 replays the trace through a
//! [`SimEngine`] with a [`ReviseEngine`] ticking on a 60s cadence —
//! jobs whose revised interval `lo` crosses their requested walltime
//! are killed early — against the walltime-limit baseline where the
//! same doomed jobs burn their full allocation.

use prionn_core::{relative_accuracy, ResourcePrediction};
use prionn_observe::{DriftHead, DriftMonitor};
use prionn_revise::{
    ConformalCalibrator, JobTruth, ProgressObs, ReviseConfig, ReviseEngine, Reviser, TrackedJob,
    SCORE_EPSILON,
};
use prionn_sched::{SimEngine, SimJob};
use prionn_telemetry::Telemetry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

const CADENCE_SECONDS: u64 = 60;

/// One simulated job: the truth, the (noisy) prediction served at
/// submission, and the padded walltime the user requested.
#[derive(Clone, Copy)]
struct TraceJob {
    id: u64,
    submit: u64,
    nodes: u32,
    truth_seconds: u64,
    predicted_minutes: f64,
    requested_seconds: u64,
    io_truth: f64,
    io_predicted: f64,
}

impl TraceJob {
    /// Doomed to the walltime limit: cannot finish inside the request.
    fn hopeless(&self) -> bool {
        self.truth_seconds > self.requested_seconds
    }
}

/// Multiplicative runtime error of the trace's model: a well-calibrated
/// bulk (±23%) with a 15% straggler tail whose jobs run 3–8x past their
/// prediction — inputs the script features never saw. The stragglers are
/// the population the kill policy exists for: their padded walltime
/// request cannot hold them, and a conformal lower bound calibrated on
/// this mixture proves it mid-flight.
fn runtime_error(rng: &mut ChaCha8Rng) -> f64 {
    if rng.gen_range(0.0..1.0) < 0.15 {
        rng.gen_range(3.0..8.0)
    } else {
        2.0f64.powf(rng.gen_range(-0.3..0.3))
    }
}

fn trace(rng: &mut ChaCha8Rng, jobs: usize) -> Vec<TraceJob> {
    (0..jobs)
        .map(|i| {
            // Predictions from 20 minutes to ~8 hours; truths off by the
            // bulk-plus-stragglers error, IO predictions by a tight 2^±0.25.
            let predicted_minutes = rng.gen_range(20.0..480.0f64);
            let truth_seconds = (predicted_minutes * 60.0 * runtime_error(rng)) as u64;
            let io_err = 2.0f64.powf(rng.gen_range(-0.25..0.25));
            let io_truth = rng.gen_range(1.0e9..5.0e10);
            TraceJob {
                id: i as u64 + 1,
                submit: rng.gen_range(0..14_400),
                nodes: rng.gen_range(1u32..16),
                truth_seconds,
                predicted_minutes,
                // Users pad their estimate by 50%.
                requested_seconds: (predicted_minutes * 60.0 * 1.5) as u64,
                io_truth,
                io_predicted: io_truth * io_err,
            }
        })
        .collect()
}

fn prediction(j: &TraceJob) -> ResourcePrediction {
    ResourcePrediction {
        runtime_minutes: j.predicted_minutes,
        read_bytes: j.io_predicted * 0.6,
        write_bytes: j.io_predicted * 0.4,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let (hot_iters, trace_jobs) = if smoke {
        (400_000usize, 600usize)
    } else {
        (4_000_000usize, 3_000usize)
    };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "revise bench ({mode} mode): {hot_iters} hot-path revisions, {trace_jobs}-job kill trace"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e71_5e00);

    // ── Phase 1: the revise + interval hot path ────────────────────────
    let reviser = Reviser::new(ReviseConfig::default());
    let cal = ConformalCalibrator::from_scores(
        (0..512)
            .map(|_| 2.0f64.powf(rng.gen_range(-1.5..1.5)))
            .collect(),
    );
    let pool: Vec<(ResourcePrediction, ProgressObs)> = (0..8_192)
        .map(|i| {
            let initial = ResourcePrediction {
                runtime_minutes: rng.gen_range(5.0..480.0),
                read_bytes: rng.gen_range(1.0e8..1.0e10),
                write_bytes: rng.gen_range(1.0e8..1.0e10),
            };
            let frac = rng.gen_range(0.05..0.95);
            let obs = ProgressObs {
                job_id: i as u64,
                elapsed_seconds: initial.runtime_minutes * 60.0 * frac * rng.gen_range(0.5..2.0),
                read_bytes_so_far: initial.read_bytes * frac,
                write_bytes_so_far: initial.write_bytes * frac,
            };
            (initial, obs)
        })
        .collect();
    let t = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..hot_iters {
        let (initial, obs) = &pool[i % pool.len()];
        let revised = reviser.revise(initial, obs);
        let iv = cal.interval(revised.runtime_minutes, 0.9);
        acc += iv.lo + iv.hi;
    }
    let hot_secs = t.elapsed().as_secs_f64();
    let revisions_per_sec = hot_iters as f64 / hot_secs;
    assert!(acc.is_finite());
    println!("  hot path: {hot_iters} revisions in {hot_secs:.3}s ({revisions_per_sec:.0}/s)");

    // ── Phase 2: split-conformal coverage vs nominal ───────────────────
    let outcomes: Vec<(f64, f64)> = (0..4_000)
        .map(|_| {
            let predicted = rng.gen_range(5.0..500.0f64);
            let truth = predicted * 2.0f64.powf(rng.gen_range(-1.5..1.5));
            (truth, predicted)
        })
        .collect();
    let (calset, holdout) = outcomes.split_at(outcomes.len() / 2);
    let cal = ConformalCalibrator::from_scores(
        calset
            .iter()
            .map(|(truth, pred)| truth / pred.max(SCORE_EPSILON))
            .collect(),
    );
    let mut coverage = serde_json::Map::new();
    let mut coverage_ok = true;
    for nominal in [0.80, 0.90, 0.95] {
        let covered = holdout
            .iter()
            .filter(|(truth, pred)| cal.interval(*pred, nominal).contains(*truth))
            .count();
        let empirical = covered as f64 / holdout.len() as f64;
        let ok = (empirical - nominal).abs() <= 0.03;
        coverage_ok &= ok;
        println!(
            "  coverage @ {:.0}%: empirical {:.1}% ({})",
            nominal * 100.0,
            empirical * 100.0,
            if ok { "ok" } else { "OUT OF TOLERANCE" }
        );
        coverage.insert(format!("{:.2}", nominal), json!(empirical));
    }

    // ── Phase 3: kill-policy trace vs walltime-limit baseline ──────────
    let jobs = {
        let mut jobs = trace(&mut rng, trace_jobs);
        jobs.sort_by_key(|j| j.submit);
        jobs
    };
    let hopeless = jobs.iter().filter(|j| j.hopeless()).count();
    // Baseline (PR 6 sched, no revision): a hopeless job burns its full
    // requested allocation at the walltime limit and produces nothing.
    let baseline_wasted_hours: f64 = jobs
        .iter()
        .filter(|j| j.hopeless())
        .map(|j| j.nodes as f64 * j.requested_seconds as f64 / 3600.0)
        .sum();

    let telemetry = Telemetry::new();
    let drift = DriftMonitor::with_defaults(&telemetry);
    // Warm calibration: outcomes from the same bulk-plus-stragglers
    // model, as the drift window would hold in steady state.
    for _ in 0..256 {
        let predicted = rng.gen_range(20.0..480.0f64);
        let truth = predicted * runtime_error(&mut rng);
        drift.record(DriftHead::Runtime, truth, predicted);
    }
    let engine = ReviseEngine::new(
        &telemetry,
        ReviseConfig {
            cadence_seconds: CADENCE_SECONDS,
            ..ReviseConfig::default()
        },
    );
    engine.attach_drift(&drift);

    let mut sim = SimEngine::new(96);
    let mut ra_revised_sum = 0.0f64;
    let mut ra_initial_sum = 0.0f64;
    let mut ra_count = 0usize;
    let truth_of = |id: u64| jobs.iter().find(|j| j.id == id).expect("trace job");

    let t = Instant::now();
    let mut next = 0usize;
    let mut clock = 0u64;
    loop {
        while next < jobs.len() && jobs[next].submit <= clock {
            let j = &jobs[next];
            engine.track(TrackedJob {
                id: j.id,
                prediction: prediction(j),
                requested_seconds: j.requested_seconds,
                truth: JobTruth {
                    runtime_seconds: j.truth_seconds,
                    read_bytes: j.io_truth * 0.6,
                    write_bytes: j.io_truth * 0.4,
                },
            });
            sim.submit(SimJob {
                id: j.id,
                submit: j.submit,
                nodes: j.nodes,
                // The walltime limit would stop the job anyway; what the
                // kill policy buys is stopping it *earlier*.
                runtime: j.truth_seconds.min(j.requested_seconds),
                estimate: j.requested_seconds,
            });
            next += 1;
        }
        let report = engine.tick(&mut sim);
        for rev in &report.revisions {
            let j = truth_of(rev.job_id);
            // Past 25% of the job's actual life: does the revised point
            // beat the submission-time one?
            if rev.elapsed_seconds >= 0.25 * j.truth_seconds as f64 {
                let truth_minutes = j.truth_seconds as f64 / 60.0;
                ra_revised_sum += relative_accuracy(rev.revised.runtime_minutes, truth_minutes);
                ra_initial_sum += relative_accuracy(j.predicted_minutes, truth_minutes);
                ra_count += 1;
            }
        }
        if next >= jobs.len()
            && sim.running_info().next().is_none()
            && sim.queued_jobs().next().is_none()
        {
            break;
        }
        clock = clock.max(sim.now()) + CADENCE_SECONDS;
        sim.advance_to(clock);
    }
    let trace_secs = t.elapsed().as_secs_f64();
    let snap = engine.snapshot();
    let revise_wasted_hours = baseline_wasted_hours - snap.cpu_hours_saved;
    let mean_ra_revised = ra_revised_sum / ra_count.max(1) as f64;
    let mean_ra_initial = ra_initial_sum / ra_count.max(1) as f64;
    println!(
        "  trace: {trace_jobs} jobs ({hopeless} hopeless) replayed in {trace_secs:.2}s; \
         {} kills reclaimed {:.1} of {:.1} doomed CPU-hours",
        snap.kills_total, snap.cpu_hours_saved, baseline_wasted_hours
    );
    println!(
        "  accuracy past 25% progress: revised {:.4} vs initial {:.4} mean relativeAccuracy \
         over {ra_count} revisions",
        mean_ra_revised, mean_ra_initial
    );

    let report = json!({
        "bench": "revise",
        "mode": mode,
        "hot_path_revisions": hot_iters,
        "revisions_per_sec": revisions_per_sec,
        "empirical_coverage": coverage,
        "coverage_tolerance": 0.03,
        "coverage_ok": coverage_ok,
        "trace_jobs": trace_jobs,
        "hopeless_jobs": hopeless,
        "kills": snap.kills_total,
        "baseline_wasted_cpu_hours": baseline_wasted_hours,
        "revise_wasted_cpu_hours": revise_wasted_hours,
        "cpu_hours_saved": snap.cpu_hours_saved,
        "mean_relative_accuracy_revised": mean_ra_revised,
        "mean_relative_accuracy_initial": mean_ra_initial,
        // -1 when no tracked job with a served interval completed.
        "trace_empirical_coverage": snap.empirical_coverage.unwrap_or(-1.0),
        "floor": {
            "revisions_per_sec": 50_000,
            "coverage_within": 0.03,
            "cpu_hours_saved_gt": 0.0,
        },
    });
    let out = std::env::var("BENCH_REVISE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_revise.json").into());
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        let mut failed = false;
        if revisions_per_sec < 50_000.0 {
            eprintln!("FAIL: hot path sustained {revisions_per_sec:.0} revisions/s (< 50k floor)");
            failed = true;
        }
        if !coverage_ok {
            eprintln!("FAIL: empirical coverage strayed more than 3 points from nominal");
            failed = true;
        }
        if snap.cpu_hours_saved <= 0.0 {
            eprintln!("FAIL: kill policy reclaimed no CPU-hours");
            failed = true;
        }
        if mean_ra_revised <= mean_ra_initial {
            eprintln!(
                "FAIL: revised predictions ({mean_ra_revised:.4}) did not beat submission-only \
                 ({mean_ra_initial:.4}) past 25% progress"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: {revisions_per_sec:.0} revisions/s >= 50k, coverage within 3 points, \
             {:.1} CPU-hours saved > 0, revised accuracy {mean_ra_revised:.4} > {mean_ra_initial:.4}",
            snap.cpu_hours_saved
        );
    }
}
