//! Forecast aggregator scale bench: can the incremental [`IoAggregator`]
//! sustain a cluster of 100k+ concurrent jobs where the batch
//! `io_timeline` rebuild cannot?
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench
//! forecast`) and writes `BENCH_forecast.json` to the workspace root
//! (override with `BENCH_FORECAST_OUT`). Flags:
//!
//! * `--smoke`   — fewer jobs/updates, for CI;
//! * `--enforce` — exit non-zero unless the run held ≥ 100k concurrent
//!   jobs, sustained ≥ 50k interval updates/sec under churn, and the
//!   incremental snapshot stayed within 1e-9 relative of the batch
//!   rebuild (the PR's acceptance floor).
//!
//! Method: populate a one-week (10080-minute) horizon with randomized job
//! IO intervals, then churn it — every update retires one random resident
//! job and admits a fresh one, the aggregator doing one `remove` + one
//! `add` while a batch system would re-sum every job. The batch
//! `io_timeline` rebuild is timed on the same resident set as the honest
//! baseline, and the final snapshot is checked against it.

use prionn_forecast::IoAggregator;
use prionn_sched::{io_timeline, JobIoInterval};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::time::Instant;

const HORIZON_MINUTES: usize = 10_080; // one week

fn random_interval(rng: &mut ChaCha8Rng) -> JobIoInterval {
    let horizon_secs = (HORIZON_MINUTES as u64) * 60;
    let start = rng.gen_range(0..horizon_secs);
    // Runtimes from minutes to a couple of days, bandwidths to ~1 GB/s.
    let duration = rng.gen_range(60u64..(48 * 3600));
    JobIoInterval {
        start,
        end: start + duration,
        bandwidth: rng.gen_range(1.0..1e9),
    }
}

/// Max |incremental - batch| per minute, relative to the batch value.
fn max_rel_err(snapshot: &[f64], batch: &[f64]) -> f64 {
    snapshot
        .iter()
        .zip(batch)
        .map(|(a, b)| (a - b).abs() / b.abs().max(1.0))
        .fold(0.0, f64::max)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let (jobs, churn_updates) = if smoke {
        (120_000usize, 100_000usize)
    } else {
        (250_000usize, 500_000usize)
    };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "forecast bench ({mode} mode): {jobs} concurrent jobs over a {HORIZON_MINUTES}-minute \
         horizon, {churn_updates} churn updates"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_f04e);
    let mut resident: Vec<JobIoInterval> = (0..jobs).map(|_| random_interval(&mut rng)).collect();

    // Phase 1: admit the whole cluster.
    let mut agg = IoAggregator::new(HORIZON_MINUTES);
    let t = Instant::now();
    for iv in &resident {
        agg.add(iv);
    }
    let add_secs = t.elapsed().as_secs_f64();
    let adds_per_sec = jobs as f64 / add_secs;
    println!("  populate: {jobs} adds in {add_secs:.3}s ({adds_per_sec:.0}/s)");

    // Phase 2: steady-state churn — retire one, admit one, per update.
    let t = Instant::now();
    for _ in 0..churn_updates {
        let slot = rng.gen_range(0..resident.len());
        agg.remove(&resident[slot]);
        resident[slot] = random_interval(&mut rng);
        agg.add(&resident[slot]);
    }
    let churn_secs = t.elapsed().as_secs_f64();
    // One update = one remove + one add (two interval operations).
    let updates_per_sec = churn_updates as f64 / churn_secs;
    println!("  churn: {churn_updates} updates in {churn_secs:.3}s ({updates_per_sec:.0}/s)");

    // Phase 3: full-horizon snapshot and streaming reads.
    let t = Instant::now();
    let snapshot = agg.snapshot(HORIZON_MINUTES);
    let snapshot_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut streamed = 0.0f64;
    for m in 0..HORIZON_MINUTES {
        streamed += agg.advance_to(m);
    }
    let stream_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("  reads: snapshot {snapshot_ms:.3} ms, streaming walk {stream_ms:.3} ms");

    // Phase 4: the batch rebuild on the same resident set — what a
    // non-incremental system pays on *every* arrival or completion.
    let t = Instant::now();
    let batch = io_timeline(&resident, HORIZON_MINUTES);
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    let rel_err = max_rel_err(&snapshot, &batch);
    let speedup = (rebuild_ms / 1e3) / (1.0 / updates_per_sec);
    println!(
        "  batch io_timeline rebuild: {rebuild_ms:.3} ms (one churn update is {speedup:.0}x \
         cheaper); parity max rel err {rel_err:.3e}"
    );
    assert!(streamed.is_finite());

    let parity_ok = rel_err <= 1e-9;
    let report = json!({
        "bench": "forecast",
        "mode": mode,
        "horizon_minutes": HORIZON_MINUTES,
        "concurrent_jobs": jobs,
        "populate_adds_per_sec": adds_per_sec,
        "churn_updates": churn_updates,
        "churn_updates_per_sec": updates_per_sec,
        "snapshot_ms": snapshot_ms,
        "streaming_walk_ms": stream_ms,
        "batch_rebuild_ms": rebuild_ms,
        "update_vs_rebuild_speedup": speedup,
        "parity_max_rel_err": rel_err,
        "parity_ok": parity_ok,
        "floor": { "concurrent_jobs": 100_000, "churn_updates_per_sec": 50_000 },
    });
    let out = std::env::var("BENCH_FORECAST_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_forecast.json").into()
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        let mut failed = false;
        if jobs < 100_000 {
            eprintln!("FAIL: only {jobs} concurrent jobs (< 100k floor)");
            failed = true;
        }
        if updates_per_sec < 50_000.0 {
            eprintln!("FAIL: churn sustained {updates_per_sec:.0} updates/s (< 50k floor)");
            failed = true;
        }
        if !parity_ok {
            eprintln!("FAIL: snapshot diverged from batch io_timeline (max rel err {rel_err:.3e})");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: {jobs} jobs >= 100k, {updates_per_sec:.0} updates/s >= 50k, parity OK");
    }
}
