//! Serving bench: 8 concurrent clients against the micro-batching gateway
//! versus the same clients serialised through `PrionnService::predict`
//! (the pre-gateway serving path, one forward pass per request).
//!
//! Runs as a custom harness (`cargo bench -p prionn-bench --bench serve`)
//! and writes `BENCH_serve.json` to the workspace root (override with
//! `BENCH_SERVE_OUT`). Flags:
//!
//! * `--smoke`   — fewer requests per client, for CI;
//! * `--enforce` — exit non-zero unless the gateway sustains ≥2× the
//!   serialized throughput AND its p50 latency beats the serialized p50
//!   (the PR's acceptance floor).
//!
//! Both sides serve the *same* trained weights (handed over via the
//! checkpoint wire format), so the comparison isolates the serving layer.
//! On a single-core host the win comes from batch fusion: one batch-N
//! forward amortises the data mapping and GEMM overhead that batch-1
//! requests pay N times.

use prionn_core::{Prionn, PrionnConfig, PrionnService, ServiceOptions};
use prionn_serve::{Gateway, GatewayConfig};
use serde_json::json;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;

fn corpus() -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..16 {
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -t 02:00:00\nmodule load mkl\nsrun ./short_app run{i}\n"
        ));
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 64\n#SBATCH -t 12:00:00\nmodule load big\nexport OMP_NUM_THREADS=4\nsrun ./long_app case{i}\nsync\n"
        ));
    }
    scripts
}

fn trained_model(scripts: &[String]) -> Prionn {
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 64,
        predict_io: false,
        epochs: 1,
        batch_size: 32,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &refs).unwrap();
    let runtimes: Vec<f64> = (0..refs.len())
        .map(|i| if i % 2 == 0 { 100.0 } else { 700.0 })
        .collect();
    model.retrain(&refs, &runtimes, &[], &[]).unwrap();
    model
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Run `CLIENTS` threads, each issuing `reqs` single-script predicts
/// through `call`. Returns (wall seconds, sorted per-request latencies).
fn drive_clients(
    scripts: &[String],
    reqs: usize,
    call: impl Fn(&[String]) + Sync,
) -> (f64, Vec<f64>) {
    let started = Instant::now();
    let mut lat: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let call = &call;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(reqs);
                    for r in 0..reqs {
                        let idx = (c * 7 + r) % scripts.len();
                        let one = std::slice::from_ref(&scripts[idx]);
                        let t = Instant::now();
                        call(one);
                        lat.push(t.elapsed().as_secs_f64());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    (wall, lat)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce");
    let reqs = if smoke { 15 } else { 40 };
    let mode = if smoke { "smoke" } else { "full" };
    println!("serve bench ({mode} mode): {CLIENTS} clients x {reqs} requests");

    let scripts = corpus();
    let model = trained_model(&scripts);
    // Hand the same weights to both serving paths through the checkpoint
    // wire format, exactly like a production handover.
    let ck_path = std::env::temp_dir().join("prionn_bench_serve.ck");
    model.save(&ck_path).unwrap();

    // Baseline: the single-worker service, one forward pass per request.
    let service =
        PrionnService::spawn_from_checkpoint(&ck_path, ServiceOptions::default()).unwrap();
    let (service_wall, service_lat) = drive_clients(&scripts, reqs, |one| {
        service.predict(one).unwrap();
    });
    service.shutdown();

    // Gateway: same weights, micro-batched. One replica — on a small host
    // the win must come from fusion, not parallelism.
    let gateway = Gateway::spawn_from_checkpoint(
        &ck_path,
        GatewayConfig {
            replicas: 1,
            max_batch: CLIENTS,
            max_wait: Duration::from_micros(500),
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    // Warm the replica (first batch pays one-time setup).
    gateway.predict(&scripts[..1]).unwrap();
    let warm_batches = gateway.stats().batches_served.load(Ordering::SeqCst);
    let warm_fused = gateway.stats().scripts_predicted.load(Ordering::SeqCst);
    let (gateway_wall, gateway_lat) = drive_clients(&scripts, reqs, |one| {
        gateway.predict(one).unwrap();
    });
    let batches = gateway.stats().batches_served.load(Ordering::SeqCst) - warm_batches;
    let fused = gateway.stats().scripts_predicted.load(Ordering::SeqCst) - warm_fused;
    gateway.shutdown();

    // Replica sweep: the same load against 1, 2, and 4 replica workers,
    // reporting per-replica scaling efficiency. On a single-core host the
    // curve is honest and flat (replicas contend for one CPU); on real
    // multi-core serving boxes it shows how far replica parallelism
    // carries past batch fusion.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = Vec::new();
    let mut rps_at_1 = 0.0f64;
    for replicas in [1usize, 2, 4] {
        let gw = Gateway::spawn_from_checkpoint(
            &ck_path,
            GatewayConfig {
                replicas,
                max_batch: CLIENTS,
                max_wait: Duration::from_micros(500),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        gw.predict(&scripts[..1]).unwrap();
        let (wall, lat) = drive_clients(&scripts, reqs, |one| {
            gw.predict(one).unwrap();
        });
        gw.shutdown();
        let rps = (CLIENTS * reqs) as f64 / wall;
        if replicas == 1 {
            rps_at_1 = rps;
        }
        let scaling = rps / rps_at_1;
        let efficiency = scaling / replicas as f64;
        println!(
            "  replicas={replicas}: {rps:.1} req/s  p50 {:.2} ms  scaling {scaling:.2}x  \
             efficiency {efficiency:.2}",
            percentile(&lat, 0.50) * 1e3
        );
        sweep.push(json!({
            "replicas": replicas,
            "throughput_rps": rps,
            "p50_ms": percentile(&lat, 0.50) * 1e3,
            "p95_ms": percentile(&lat, 0.95) * 1e3,
            "scaling_vs_1": scaling,
            "per_replica_efficiency": efficiency,
        }));
    }
    let _ = std::fs::remove_file(&ck_path);

    let total = (CLIENTS * reqs) as f64;
    let service_rps = total / service_wall;
    let gateway_rps = total / gateway_wall;
    let speedup = gateway_rps / service_rps;
    let service_p50 = percentile(&service_lat, 0.50) * 1e3;
    let gateway_p50 = percentile(&gateway_lat, 0.50) * 1e3;
    let mean_batch = fused as f64 / batches.max(1) as f64;

    println!(
        "  serialized service: {service_rps:.1} req/s  p50 {service_p50:.2} ms  p95 {:.2} ms",
        percentile(&service_lat, 0.95) * 1e3
    );
    println!(
        "  batched gateway:    {gateway_rps:.1} req/s  p50 {gateway_p50:.2} ms  p95 {:.2} ms  \
         ({batches} batches, {mean_batch:.1} scripts/batch)",
        percentile(&gateway_lat, 0.95) * 1e3
    );
    println!("  throughput speedup: {speedup:.2}x");

    let report = json!({
        "bench": "serve",
        "mode": mode,
        "clients": CLIENTS,
        "requests_per_client": reqs,
        "serialized_service": {
            "throughput_rps": service_rps,
            "p50_ms": service_p50,
            "p95_ms": percentile(&service_lat, 0.95) * 1e3,
        },
        "gateway": {
            "replicas": 1,
            "max_batch": CLIENTS,
            "throughput_rps": gateway_rps,
            "p50_ms": gateway_p50,
            "p95_ms": percentile(&gateway_lat, 0.95) * 1e3,
            "batches": batches,
            "mean_scripts_per_batch": mean_batch,
        },
        "throughput_speedup_vs_serialized": speedup,
        "p50_speedup_vs_serialized": service_p50 / gateway_p50,
        "cores": cores,
        "replica_sweep": sweep,
    });

    // Cargo runs bench binaries with the package dir as CWD; default to the
    // workspace root so the committed JSON lands next to README.md.
    let out = std::env::var("BENCH_SERVE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").into());
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    println!("wrote {out}");

    if enforce {
        if speedup < 2.0 {
            eprintln!(
                "FAIL: gateway {gateway_rps:.1} req/s is only {speedup:.2}x the serialized \
                 {service_rps:.1} req/s (< 2.0x floor)"
            );
            std::process::exit(1);
        }
        if gateway_p50 > service_p50 {
            eprintln!(
                "FAIL: gateway p50 {gateway_p50:.2} ms is worse than serialized p50 \
                 {service_p50:.2} ms"
            );
            std::process::exit(1);
        }
        println!(
            "enforce: throughput {speedup:.2}x >= 2.0x, p50 {gateway_p50:.2} ms <= \
             {service_p50:.2} ms OK"
        );
    }
}
