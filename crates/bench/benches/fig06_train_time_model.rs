//! Criterion bench behind Figure 6: one retraining event per deep model
//! (NN / 1D-CNN / 2D-CNN), word2vec mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prionn_core::{Prionn, PrionnConfig};
use prionn_nn::ModelKind;
use prionn_workload::{Trace, TraceConfig, TracePreset};

fn bench_models(c: &mut Criterion) {
    // Micro-scale for the same reason as the fig04 bench; figure-scale
    // numbers come from `experiments fig6`.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 16));
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = trace.jobs.iter().map(|j| j.runtime_minutes()).collect();

    let mut group = c.benchmark_group("fig06_train_time_model");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        let cfg = PrionnConfig {
            model: kind,
            predict_io: false,
            grid: (32, 32),
            base_width: 2,
            runtime_bins: 96,
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &cfg, |b, cfg| {
            let mut model = Prionn::new(cfg.clone(), &scripts).unwrap();
            b.iter(|| model.retrain(&scripts, &runtimes, &[], &[]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
