//! Figure 5: distribution of runtime-prediction relative accuracy for each
//! transform, with the 2D-CNN, under the online protocol.

use crate::support::{boxplot_json, cab_trace, print_boxplot, runtime_accuracy, write_results};
use crate::ExperimentScale;
use prionn_core::run_online_prionn;
use prionn_nn::ModelKind;
use prionn_text::TransformKind;
use serde_json::json;

/// Run the experiment; returns a boxplot summary per transform.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.comparison_jobs());
    println!(
        "Figure 5 — runtime relative accuracy per transform (2D-CNN, {} jobs)",
        trace.jobs.len()
    );
    let mut rows = serde_json::Map::new();
    for kind in TransformKind::ALL {
        let mut cfg = scale.online_with(kind, ModelKind::Cnn2d);
        cfg.prionn.predict_io = false;
        let preds = run_online_prionn(&trace.jobs, &cfg).expect("online run");
        let acc = runtime_accuracy(&trace.jobs, &preds, true);
        let summary = print_boxplot(kind.label(), &acc);
        rows.insert(kind.label().to_string(), boxplot_json(&summary));
    }
    let out = json!({
        "figure": "5",
        "jobs": trace.jobs.len(),
        "accuracy_by_transform": rows,
        "paper_shape": "word2vec attains the best accuracy of the four transforms",
    });
    write_results("fig05_accuracy_transform", &out);
    out
}
