//! Experiment scaling presets.
//!
//! The paper ran on 295,077 jobs with dual-K40 GPUs; this reproduction runs
//! the identical pipeline on CPU, so each experiment supports three scales.
//! The *shape* of every result (orderings, ratios, crossovers) is what the
//! scales preserve; absolute wall-clock and job counts differ by design.

use prionn_core::{OnlineConfig, PrionnConfig};
use prionn_nn::ModelKind;
use prionn_text::TransformKind;

/// How large to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minutes on a single core: reduced trace slices, narrow CNN, coarse
    /// heads. The default for `cargo run -p prionn-bench --bin experiments`.
    Quick,
    /// Tens of minutes: closer to paper batch sizes (500-job window,
    /// 100-submission cadence).
    Standard,
    /// The paper's full protocol (500/100, 10 epochs, 960 bins, 64×64,
    /// width-8 CNN) over large slices. Hours to days on one CPU core.
    Full,
}

impl ExperimentScale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(ExperimentScale::Quick),
            "standard" => Some(ExperimentScale::Standard),
            "full" => Some(ExperimentScale::Full),
            _ => None,
        }
    }

    /// Jobs in the Cab-like trace slice driving the online experiments.
    pub fn trace_jobs(&self) -> usize {
        match self {
            ExperimentScale::Quick => 1_200,
            ExperimentScale::Standard => 3_000,
            ExperimentScale::Full => 50_000,
        }
    }

    /// Jobs used for the per-transform / per-model comparisons
    /// (Figs 5 & 7), which run several online loops.
    pub fn comparison_jobs(&self) -> usize {
        match self {
            ExperimentScale::Quick => 600,
            ExperimentScale::Standard => 1_500,
            ExperimentScale::Full => 20_000,
        }
    }

    /// The per-sample job count for the turnaround studies (paper: five
    /// samples of 10,000).
    pub fn turnaround_sample(&self) -> usize {
        match self {
            ExperimentScale::Quick => 1_000,
            ExperimentScale::Standard => 2_000,
            ExperimentScale::Full => 10_000,
        }
    }

    /// Number of turnaround samples (paper: 5).
    pub fn turnaround_samples(&self) -> usize {
        match self {
            ExperimentScale::Quick => 2,
            ExperimentScale::Standard => 3,
            ExperimentScale::Full => 5,
        }
    }

    /// Simulated cluster size for the turnaround studies. Sampling a subset
    /// of the trace onto the full 1,296-node machine would leave it idle;
    /// shrinking the simulated cluster restores the original contention
    /// level (documented in EXPERIMENTS.md).
    pub fn sim_nodes(&self) -> u32 {
        match self {
            ExperimentScale::Quick => 416,
            ExperimentScale::Standard => 416,
            ExperimentScale::Full => 448,
        }
    }

    /// The PRIONN model configuration at this scale.
    pub fn prionn(&self) -> PrionnConfig {
        match self {
            ExperimentScale::Quick => PrionnConfig {
                base_width: 4,
                runtime_bins: 960,
                io_bins: 64,
                epochs: 16,
                batch_size: 8,
                ..Default::default()
            },
            ExperimentScale::Standard => PrionnConfig {
                base_width: 4,
                runtime_bins: 960,
                io_bins: 64,
                epochs: 12,
                batch_size: 8,
                ..Default::default()
            },
            ExperimentScale::Full => PrionnConfig::default(),
        }
    }

    /// The online-protocol configuration at this scale.
    pub fn online(&self) -> OnlineConfig {
        match self {
            ExperimentScale::Quick => OnlineConfig {
                train_window: 250,
                retrain_every: 100,
                min_history: 80,
                cold_start: false,
                telemetry: None,
                drift: None,
                prionn: self.prionn(),
            },
            ExperimentScale::Standard => OnlineConfig {
                train_window: 300,
                retrain_every: 100,
                min_history: 100,
                cold_start: false,
                telemetry: None,
                drift: None,
                prionn: self.prionn(),
            },
            ExperimentScale::Full => OnlineConfig {
                train_window: 500,
                retrain_every: 100,
                min_history: 100,
                cold_start: false,
                telemetry: None,
                drift: None,
                prionn: self.prionn(),
            },
        }
    }

    /// An online config for a specific transform/model combination.
    pub fn online_with(&self, transform: TransformKind, model: ModelKind) -> OnlineConfig {
        let mut cfg = self.online();
        cfg.prionn.transform = transform;
        cfg.prionn.model = model;
        cfg
    }

    /// SDSC trace sizes for Table 2 (paper: 76,840 / 32,100).
    pub fn sdsc_jobs(&self) -> (usize, usize) {
        match self {
            ExperimentScale::Quick => (6_000, 3_000),
            ExperimentScale::Standard => (20_000, 10_000),
            ExperimentScale::Full => (76_840, 32_100),
        }
    }

    /// Scripts per timing batch for Figs 3–4 & 6 (paper: 500).
    pub fn timing_batch(&self) -> usize {
        match self {
            ExperimentScale::Quick => 100,
            ExperimentScale::Standard => 500,
            ExperimentScale::Full => 500,
        }
    }
}

impl std::fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentScale::Quick => write!(f, "quick"),
            ExperimentScale::Standard => write!(f, "standard"),
            ExperimentScale::Full => write!(f, "full"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [
            ExperimentScale::Quick,
            ExperimentScale::Standard,
            ExperimentScale::Full,
        ] {
            assert_eq!(ExperimentScale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(ExperimentScale::parse("bogus"), None);
    }

    #[test]
    fn scales_are_monotone() {
        let (q, s, f) = (
            ExperimentScale::Quick,
            ExperimentScale::Standard,
            ExperimentScale::Full,
        );
        assert!(q.trace_jobs() < s.trace_jobs() && s.trace_jobs() < f.trace_jobs());
        assert!(q.prionn().base_width <= f.prionn().base_width);
        assert!(f.online().train_window == 500 && f.online().retrain_every == 100);
        assert_eq!(f.prionn().runtime_bins, 960);
        assert_eq!(
            f.prionn().epochs,
            10,
            "paper protocol: 10 epochs per retrain"
        );
    }
}
