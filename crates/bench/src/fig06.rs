//! Figure 6: time to train each deep model (NN, 1D-CNN, 2D-CNN) for one
//! retraining event, with the word2vec mapping.

use crate::support::{cab_trace, time_it, write_results};
use crate::ExperimentScale;
use prionn_core::{Prionn, PrionnConfig};
use prionn_nn::ModelKind;
use serde_json::json;

/// Run the experiment; returns `{model: seconds}`.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let n = scale.timing_batch();
    let trace = cab_trace(n);
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = trace.jobs.iter().map(|j| j.runtime_minutes()).collect();
    let epochs = scale.prionn().epochs;

    println!("Figure 6 — training time per deep model (word2vec, {epochs} epochs, {n} jobs)");
    let mut rows = serde_json::Map::new();
    for kind in ModelKind::ALL {
        let cfg = PrionnConfig {
            model: kind,
            predict_io: false,
            ..scale.prionn()
        };
        let mut model = Prionn::new(cfg, &scripts).expect("prionn construction");
        let (_, secs) = time_it(|| {
            model
                .retrain(&scripts, &runtimes, &[], &[])
                .expect("training")
        });
        println!("  {:<8} {secs:8.2} s", kind.label());
        rows.insert(kind.label().to_string(), json!(secs));
    }
    let out = json!({
        "figure": "6",
        "batch_jobs": n,
        "epochs": epochs,
        "seconds_per_retrain": rows,
        "paper_shape": "NN slowest (huge dense input layer); 1D-CNN fastest; 2D-CNN between",
    });
    write_results("fig06_train_time_model", &out);
    out
}
