//! Figure 11: (a) distribution of simulated turnaround times; (b) relative
//! accuracy of turnaround-time predictions with user-requested runtimes vs
//! PRIONN runtimes, over several sampled job subsets.

use crate::support::{boxplot_json, print_boxplot, write_results};
use crate::ExperimentScale;
use prionn_core::metrics::relative_accuracy;
use prionn_core::run_online_prionn;
use prionn_sched::{predict_turnarounds, SimJob};
use prionn_workload::{stats, Trace, TraceConfig, TracePreset};
use serde_json::json;
use std::collections::HashMap;

/// Build the simulator jobs for a trace sample (executed jobs only).
pub fn sim_jobs(trace: &Trace) -> Vec<SimJob> {
    trace
        .executed_jobs()
        .map(|j| SimJob {
            id: j.id,
            submit: j.submit_time,
            nodes: j.nodes,
            runtime: j.runtime_seconds.max(1),
            estimate: j.requested_seconds.max(1),
        })
        .collect()
}

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let n_samples = scale.turnaround_samples();
    let sample_size = scale.turnaround_sample();
    let nodes = scale.sim_nodes();
    println!(
        "Figure 11 — turnaround prediction over {n_samples} samples of {sample_size} jobs \
         on a {nodes}-node simulated cluster"
    );

    let mut tat_minutes = Vec::new();
    let mut acc_user = Vec::new();
    let mut acc_prionn = Vec::new();

    for s in 0..n_samples {
        let mut cfg = TraceConfig::preset(TracePreset::CabLike, sample_size);
        cfg.seed ^= (s as u64 + 1) * 0x9e37_79b9;
        let trace = Trace::generate(&cfg);

        // PRIONN runtime predictions under the online protocol.
        let mut online = scale.online();
        online.prionn.predict_io = false;
        let preds = run_online_prionn(&trace.jobs, &online).expect("online run");
        let prionn_runtime: HashMap<u64, u64> = preds
            .iter()
            .map(|p| (p.job_id, (p.runtime_minutes * 60.0).max(1.0) as u64))
            .collect();

        let jobs = sim_jobs(&trace);
        let user_runtime: HashMap<u64, u64> = jobs.iter().map(|j| (j.id, j.estimate)).collect();

        let with_user = predict_turnarounds(nodes, &jobs, &user_runtime);
        let with_prionn = predict_turnarounds(nodes, &jobs, &prionn_runtime);

        for ((a_u, p_u), (a_p, p_p)) in with_user.iter().zip(&with_prionn) {
            debug_assert_eq!(a_u, a_p);
            tat_minutes.push(*a_u as f64 / 60.0);
            acc_user.push(relative_accuracy(*a_u as f64, *p_u as f64));
            acc_prionn.push(relative_accuracy(*a_p as f64, *p_p as f64));
        }
    }

    println!("Figure 11a — simulated turnaround distribution");
    println!(
        "  mean={:.1} min  median={:.1} min  p95={:.1} min",
        stats::mean(&tat_minutes),
        stats::median(&tat_minutes),
        stats::percentile(&tat_minutes, 95.0)
    );
    println!("Figure 11b — turnaround prediction accuracy");
    let s_user = print_boxplot("user runtime", &acc_user);
    let s_prionn = print_boxplot("PRIONN runtime", &acc_prionn);

    let out = json!({
        "figure": "11",
        "samples": n_samples,
        "sample_size": sample_size,
        "sim_nodes": nodes,
        "turnaround_minutes": {
            "mean": stats::mean(&tat_minutes),
            "median": stats::median(&tat_minutes),
            "p95": stats::percentile(&tat_minutes, 95.0),
        },
        "accuracy": {
            "user": boxplot_json(&s_user),
            "prionn": boxplot_json(&s_prionn),
        },
        "paper_shape": "PRIONN improves mean/median turnaround accuracy over user requests (paper: +14.0/+14.1 pp)",
    });
    write_results("fig11_turnaround", &out);
    out
}
