//! Shared plumbing for the experiment modules.

use prionn_core::metrics::relative_accuracy;
use prionn_core::JobPrediction;
use prionn_workload::stats::{boxplot_summary, BoxplotSummary};
use prionn_workload::{JobRecord, Trace, TraceConfig, TracePreset};
use serde_json::json;
use std::collections::HashMap;

/// Generate the canonical Cab-like trace slice for an experiment.
///
/// The user population scales with the slice: a 1,200-job slice of Cab's
/// year covers ~1.5 days, during which only a fraction of the 492 users are
/// active. Keeping per-user submission density realistic preserves the
/// script-reuse structure the online protocol exploits.
pub fn cab_trace(n_jobs: usize) -> Trace {
    let mut cfg = TraceConfig::preset(TracePreset::CabLike, n_jobs);
    cfg.n_users = (n_jobs / 15).clamp(40, 492);
    Trace::generate(&cfg)
}

/// Index predictions by job id.
pub fn by_job_id(preds: &[JobPrediction]) -> HashMap<u64, JobPrediction> {
    preds.iter().map(|p| (p.job_id, *p)).collect()
}

/// Relative accuracies of runtime predictions over the executed jobs for
/// which the model had trained (the paper's warm-up period is excluded from
/// per-model comparisons so cold-start fallbacks don't leak into the
/// distributions).
pub fn runtime_accuracy(
    jobs: &[JobRecord],
    preds: &[JobPrediction],
    trained_only: bool,
) -> Vec<f64> {
    let map = by_job_id(preds);
    jobs.iter()
        .filter(|j| !j.cancelled)
        .filter_map(|j| {
            let p = map.get(&j.id)?;
            if trained_only && !p.model_trained {
                return None;
            }
            Some(relative_accuracy(j.runtime_minutes(), p.runtime_minutes))
        })
        .collect()
}

/// Ids of executed jobs in the steady-state portion of the stream: the jobs
/// after the first `skip_frac` of executed submissions.
///
/// The paper's distributions are dominated by a long-mature model (295k jobs
/// vs a few hundred of warm-up); on short slices the maturing phase is a
/// visible artefact, so experiments report steady-state numbers alongside
/// the full stream.
pub fn steady_ids(jobs: &[JobRecord], skip_frac: f64) -> std::collections::HashSet<u64> {
    let executed: Vec<u64> = jobs.iter().filter(|j| !j.cancelled).map(|j| j.id).collect();
    let skip = (executed.len() as f64 * skip_frac) as usize;
    executed[skip.min(executed.len())..]
        .iter()
        .copied()
        .collect()
}

/// Relative accuracies of (read, write) *bandwidth* predictions, derived the
/// paper's way: predicted bytes divided by predicted runtime.
pub fn bandwidth_accuracy(jobs: &[JobRecord], preds: &[JobPrediction]) -> (Vec<f64>, Vec<f64>) {
    let map = by_job_id(preds);
    let mut read = Vec::new();
    let mut write = Vec::new();
    for j in jobs.iter().filter(|j| !j.cancelled) {
        let Some(p) = map.get(&j.id) else { continue };
        if !p.model_trained {
            continue;
        }
        let secs = (p.runtime_minutes * 60.0).max(1.0);
        read.push(relative_accuracy(j.read_bandwidth(), p.read_bytes / secs));
        write.push(relative_accuracy(j.write_bandwidth(), p.write_bytes / secs));
    }
    (read, write)
}

/// Print a labelled boxplot row (the textual form of the paper's boxplots).
pub fn print_boxplot(label: &str, values: &[f64]) -> BoxplotSummary {
    let s = boxplot_summary(values);
    println!(
        "  {label:<22} mean={:6.1}%  median={:6.1}%  q1={:6.1}%  q3={:6.1}%  n={}",
        s.mean * 100.0,
        s.median * 100.0,
        s.q1 * 100.0,
        s.q3 * 100.0,
        values.len()
    );
    s
}

/// Serialize a boxplot summary.
pub fn boxplot_json(s: &BoxplotSummary) -> serde_json::Value {
    json!({
        "min": s.min, "q1": s.q1, "median": s.median,
        "q3": s.q3, "max": s.max, "mean": s.mean,
    })
}

/// Write an experiment's JSON next to the repo's `results/` directory.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // non-fatal: results still printed
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, s);
    }
}

/// Wall-clock a closure in seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_jobs() -> Vec<JobRecord> {
        (0..4u64)
            .map(|i| JobRecord {
                id: i,
                user: "u".into(),
                group: "g".into(),
                account: "a".into(),
                app: "x".into(),
                script: String::new(),
                submit_dir: "/".into(),
                submit_time: i,
                requested_seconds: 3600,
                nodes: 1,
                runtime_seconds: 600,
                bytes_read: 6.0e8,
                bytes_written: 1.2e9,
                mean_power_watts: 1_500.0,
                cancelled: i == 3,
            })
            .collect()
    }

    fn fake_preds() -> Vec<JobPrediction> {
        (0..3u64)
            .map(|i| JobPrediction {
                job_id: i,
                runtime_minutes: 10.0,
                read_bytes: 6.0e8,
                write_bytes: 1.2e9,
                model_trained: i > 0,
            })
            .collect()
    }

    #[test]
    fn runtime_accuracy_respects_trained_filter() {
        let jobs = fake_jobs();
        let preds = fake_preds();
        assert_eq!(runtime_accuracy(&jobs, &preds, false).len(), 3);
        assert_eq!(runtime_accuracy(&jobs, &preds, true).len(), 2);
        // Exact prediction: accuracy 1.
        let acc = runtime_accuracy(&jobs, &preds, true);
        assert!(acc.iter().all(|&a| (a - 1.0).abs() < 1e-9));
    }

    #[test]
    fn bandwidth_accuracy_uses_predicted_runtime() {
        let jobs = fake_jobs();
        let preds = fake_preds();
        let (read, write) = bandwidth_accuracy(&jobs, &preds);
        // Predicted runtime == actual, bytes == actual -> accuracy 1.
        assert!(read.iter().all(|&a| (a - 1.0).abs() < 1e-9));
        assert!(write.iter().all(|&a| (a - 1.0).abs() < 1e-9));
    }

    #[test]
    fn cancelled_jobs_are_excluded() {
        let jobs = fake_jobs();
        let mut preds = fake_preds();
        preds.push(JobPrediction {
            job_id: 3,
            runtime_minutes: 1.0,
            read_bytes: 0.0,
            write_bytes: 0.0,
            model_trained: true,
        });
        assert_eq!(runtime_accuracy(&jobs, &preds, false).len(), 3);
    }
}
