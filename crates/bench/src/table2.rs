//! Table 2: runtime MAE of the RF baseline on SDSC-like traces, next to the
//! numbers Smith et al. and the paper report for the real SDSC95/SDSC96
//! workloads.

use crate::support::write_results;
use crate::ExperimentScale;
use prionn_core::metrics::mean_absolute_error;
use prionn_core::{run_online_baseline, BaselineKind};
use prionn_workload::{Trace, TraceConfig, TracePreset};
use serde_json::json;

/// Published reference values (minutes).
pub const SMITH_MAE: [(&str, f64); 2] = [("SDSC95", 59.65), ("SDSC96", 74.56)];
/// The paper's own RF replication (minutes).
pub const PAPER_RF_MAE: [(&str, f64); 2] = [("SDSC95", 35.95), ("SDSC96", 76.69)];

fn rf_mae(trace: &Trace, scale: &ExperimentScale) -> f64 {
    let online = scale.online();
    let preds = run_online_baseline(
        &trace.jobs,
        BaselineKind::RandomForest,
        online.train_window,
        online.retrain_every,
        online.min_history,
    )
    .expect("RF online run");
    let by_id: std::collections::HashMap<u64, _> = preds.iter().map(|p| (p.job_id, p)).collect();
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for j in trace.executed_jobs() {
        let p = by_id[&j.id];
        if p.model_trained {
            truth.push(j.runtime_minutes());
            pred.push(p.runtime_minutes);
        }
    }
    mean_absolute_error(&truth, &pred)
}

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let (n95, n96) = scale.sdsc_jobs();
    println!("Table 2 — RF runtime MAE on SDSC-like traces (minutes)");
    println!(
        "  {:<8} {:>10} {:>12} {:>12} {:>14}",
        "dataset", "jobs", "Smith et al.", "paper RF", "our RF (sim)"
    );

    let mut rows = serde_json::Map::new();
    for (i, (preset, n)) in [(TracePreset::Sdsc95, n95), (TracePreset::Sdsc96, n96)]
        .into_iter()
        .enumerate()
    {
        let trace = Trace::generate(&TraceConfig::preset(preset, n));
        let mae = rf_mae(&trace, scale);
        let (name, smith) = SMITH_MAE[i];
        let (_, paper) = PAPER_RF_MAE[i];
        println!("  {name:<8} {n:>10} {smith:>12.2} {paper:>12.2} {mae:>14.2}");
        rows.insert(
            name.to_string(),
            json!({"jobs": n, "smith_mae": smith, "paper_rf_mae": paper, "our_rf_mae": mae}),
        );
    }
    let out = json!({
        "table": "2",
        "rows": rows,
        "paper_shape": "an online RF achieves MAE in the same tens-of-minutes range as published results",
    });
    write_results("table2_rf_mae", &out);
    out
}
