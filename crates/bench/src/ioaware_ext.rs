//! Beyond-paper extension: close the loop the paper motivates. Feed
//! PRIONN's IO predictions into the IO-aware admission policy
//! ([`prionn_sched::io_aware`]) and compare the resulting *actual* system
//! IO against plain FCFS+EASY on the same jobs: fewer/lower IO bursts at
//! some turnaround cost.

use crate::fig11::sim_jobs;
use crate::support::write_results;
use crate::ExperimentScale;
use prionn_core::run_online_prionn;
use prionn_sched::engine::simulate;
use prionn_sched::{
    burst_threshold, io_timeline, simulate_io_aware, IoAwareConfig, JobIoInterval, Schedule,
};
use prionn_workload::{stats, JobRecord, Trace, TraceConfig, TracePreset};
use serde_json::json;
use std::collections::HashMap;

fn actual_io_stats(
    schedule: &Schedule,
    jobs: &HashMap<u64, &JobRecord>,
    threshold: f64,
) -> (f64, f64, usize, f64) {
    let intervals: Vec<JobIoInterval> = schedule
        .entries
        .iter()
        .map(|e| {
            let j = jobs[&e.id];
            JobIoInterval {
                start: e.start,
                end: e.end,
                bandwidth: j.read_bandwidth() + j.write_bandwidth(),
            }
        })
        .collect();
    let horizon = prionn_sched::io::horizon_minutes(&intervals);
    let timeline = io_timeline(&intervals, horizon);
    let peak = timeline.iter().cloned().fold(0.0, f64::max);
    let p99 = stats::percentile(&timeline, 99.0);
    let burst_minutes = timeline.iter().filter(|&&v| v > threshold).count();
    let mean_turnaround = schedule
        .entries
        .iter()
        .map(|e| e.turnaround() as f64)
        .sum::<f64>()
        / schedule.entries.len().max(1) as f64;
    (peak, p99, burst_minutes, mean_turnaround / 60.0)
}

/// Run the extension study.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let mut cfg = TraceConfig::preset(TracePreset::CabLike, scale.turnaround_sample());
    cfg.n_users = (cfg.n_jobs / 15).clamp(40, 492);
    let trace = Trace::generate(&cfg);
    let nodes = scale.sim_nodes();
    println!(
        "Extension — IO-aware admission vs FCFS ({} jobs, {nodes} nodes)",
        trace.jobs.len()
    );

    // PRIONN's per-job bandwidth predictions drive the policy.
    let online = scale.online();
    let preds = run_online_prionn(&trace.jobs, &online).expect("online run");
    let predicted_bw: HashMap<u64, f64> = preds
        .iter()
        .map(|p| {
            let secs = (p.runtime_minutes * 60.0).max(1.0);
            (p.job_id, (p.read_bytes + p.write_bytes) / secs)
        })
        .collect();

    let jobs = sim_jobs(&trace);
    let by_id: HashMap<u64, &JobRecord> = trace.executed_jobs().map(|j| (j.id, j)).collect();

    let fcfs = simulate(nodes, &jobs);

    // Budget: the burst threshold of the FCFS run (mean + 1σ of actual IO) —
    // "keep predicted load under what used to be a burst".
    let fcfs_intervals: Vec<JobIoInterval> = fcfs
        .entries
        .iter()
        .map(|e| {
            let j = by_id[&e.id];
            JobIoInterval {
                start: e.start,
                end: e.end,
                bandwidth: j.read_bandwidth() + j.write_bandwidth(),
            }
        })
        .collect();
    let horizon = prionn_sched::io::horizon_minutes(&fcfs_intervals);
    let fcfs_timeline = io_timeline(&fcfs_intervals, horizon);
    let threshold = burst_threshold(&fcfs_timeline);

    let policy = IoAwareConfig {
        bandwidth_budget: threshold,
        max_io_delay: 4 * 3600,
    };
    let ioaware = simulate_io_aware(nodes, &jobs, policy, predicted_bw);
    // Oracle row: the same policy fed with *true* bandwidths, separating
    // the policy's effect from PRIONN's prediction error.
    let true_bw: HashMap<u64, f64> = trace
        .executed_jobs()
        .map(|j| (j.id, j.read_bandwidth() + j.write_bandwidth()))
        .collect();
    let oracle = simulate_io_aware(nodes, &jobs, policy, true_bw);

    let (f_peak, f_p99, f_bursts, f_tat) = actual_io_stats(&fcfs, &by_id, threshold);
    let (a_peak, a_p99, a_bursts, a_tat) = actual_io_stats(&ioaware, &by_id, threshold);
    let (o_peak, o_p99, o_bursts, o_tat) = actual_io_stats(&oracle, &by_id, threshold);

    println!(
        "  {:<18} {:>12} {:>12} {:>14} {:>16}",
        "policy", "peak B/s", "p99 B/s", "burst minutes", "mean TAT (min)"
    );
    println!(
        "  {:<18} {f_peak:>12.3e} {f_p99:>12.3e} {f_bursts:>14} {f_tat:>16.1}",
        "FCFS"
    );
    println!(
        "  {:<18} {a_peak:>12.3e} {a_p99:>12.3e} {a_bursts:>14} {a_tat:>16.1}",
        "IO-aware (PRIONN)"
    );
    println!(
        "  {:<18} {o_peak:>12.3e} {o_p99:>12.3e} {o_bursts:>14} {o_tat:>16.1}",
        "IO-aware (oracle)"
    );

    let out = json!({
        "experiment": "ioaware_extension",
        "jobs": jobs.len(),
        "sim_nodes": nodes,
        "bandwidth_budget": threshold,
        "fcfs": {"peak": f_peak, "p99": f_p99, "burst_minutes": f_bursts, "mean_tat_min": f_tat},
        "io_aware": {"peak": a_peak, "p99": a_p99, "burst_minutes": a_bursts, "mean_tat_min": a_tat},
        "io_aware_oracle": {"peak": o_peak, "p99": o_p99, "burst_minutes": o_bursts, "mean_tat_min": o_tat},
        "expected_shape": "IO-aware trades some turnaround for fewer/lower actual IO bursts",
    });
    write_results("ioaware_extension", &out);
    out
}
