//! Figure 4: time to train a 2D-CNN for one retraining event on a batch of
//! jobs, for each of the four transforms.

use crate::support::{cab_trace, time_it, write_results};
use crate::ExperimentScale;
use prionn_core::{Prionn, PrionnConfig};
use prionn_text::TransformKind;
use serde_json::json;

/// Run the experiment; returns `{transform: seconds}` plus metadata.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let n = scale.timing_batch();
    let trace = cab_trace(n);
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = trace.jobs.iter().map(|j| j.runtime_minutes()).collect();
    let epochs = scale.prionn().epochs;

    println!("Figure 4 — 2D-CNN training time ({epochs} epochs, {n} jobs) per transform");
    let mut rows = serde_json::Map::new();
    for kind in TransformKind::ALL {
        let cfg = PrionnConfig {
            transform: kind,
            predict_io: false,
            ..scale.prionn()
        };
        let mut model = Prionn::new(cfg, &scripts).expect("prionn construction");
        let (_, secs) = time_it(|| {
            model
                .retrain(&scripts, &runtimes, &[], &[])
                .expect("training")
        });
        println!("  {:<10} {secs:8.2} s", kind.label());
        rows.insert(kind.label().to_string(), json!(secs));
    }
    let out = json!({
        "figure": "4",
        "batch_jobs": n,
        "epochs": epochs,
        "seconds_per_retrain": rows,
        "paper_shape": "one-hot (128 channels) costs far more than the scalar/word2vec transforms",
    });
    write_results("fig04_train_time_transform", &out);
    out
}
