//! Figure 9: (a) the actual read/write bandwidth distribution; (b, c) the
//! relative accuracy of predicted read and write bandwidth for RF and
//! PRIONN. Users provide no IO estimates, so there is no user baseline.

use crate::support::{bandwidth_accuracy, boxplot_json, cab_trace, print_boxplot, write_results};
use crate::ExperimentScale;
use prionn_core::{run_online_baseline, run_online_prionn, BaselineKind};
use prionn_workload::stats;
use serde_json::json;

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.trace_jobs());
    let read_bw: Vec<f64> = trace.executed_jobs().map(|j| j.read_bandwidth()).collect();
    let write_bw: Vec<f64> = trace.executed_jobs().map(|j| j.write_bandwidth()).collect();

    println!(
        "Figure 9a — actual bandwidth distribution ({} executed jobs)",
        read_bw.len()
    );
    println!(
        "  read : mean={:.3e} B/s  median={:.3e} B/s",
        stats::mean(&read_bw),
        stats::median(&read_bw)
    );
    println!(
        "  write: mean={:.3e} B/s  median={:.3e} B/s",
        stats::mean(&write_bw),
        stats::median(&write_bw)
    );

    let online = scale.online();
    let rf = run_online_baseline(
        &trace.jobs,
        BaselineKind::RandomForest,
        online.train_window,
        online.retrain_every,
        online.min_history,
    )
    .expect("RF online run");
    let prionn = run_online_prionn(&trace.jobs, &online).expect("PRIONN online run");

    println!("Figure 9b — bandwidth accuracy with RF");
    let (rf_read, rf_write) = bandwidth_accuracy(&trace.jobs, &rf);
    let s_rf_read = print_boxplot("RF read", &rf_read);
    let s_rf_write = print_boxplot("RF write", &rf_write);

    println!("Figure 9c — bandwidth accuracy with PRIONN");
    let (pr_read, pr_write) = bandwidth_accuracy(&trace.jobs, &prionn);
    let s_pr_read = print_boxplot("PRIONN read", &pr_read);
    let s_pr_write = print_boxplot("PRIONN write", &pr_write);

    let out = json!({
        "figure": "9",
        "jobs": read_bw.len(),
        "bandwidth_distribution": {
            "read_mean": stats::mean(&read_bw),
            "read_median": stats::median(&read_bw),
            "write_mean": stats::mean(&write_bw),
            "write_median": stats::median(&write_bw),
        },
        "accuracy": {
            "rf_read": boxplot_json(&s_rf_read),
            "rf_write": boxplot_json(&s_rf_write),
            "prionn_read": boxplot_json(&s_pr_read),
            "prionn_write": boxplot_json(&s_pr_write),
        },
        "paper_shape": "PRIONN beats RF on both read and write bandwidth (paper: +12.1/+9.6 pp); mean bandwidth >> median",
    });
    write_results("fig09_io_accuracy", &out);
    out
}
