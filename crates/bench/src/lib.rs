//! The experiment harness behind every table and figure of the PRIONN
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each `figXX` module exposes `run(&ExperimentScale) -> serde_json::Value`;
//! the `experiments` binary prints the paper-style rows and persists the
//! JSON under `results/`. Timing figures additionally have Criterion
//! benches under `benches/`.

pub mod scale;
pub mod support;

pub mod ablations;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12_13;
pub mod fig14_15;
pub mod ioaware_ext;
pub mod table2;

pub use scale::ExperimentScale;
