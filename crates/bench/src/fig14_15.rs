//! Figures 14 & 15 — system IO prediction with **predicted turnaround
//! times** (the paper's second, production-style evaluation, §4.3): both
//! when a job runs and how much IO it moves come from PRIONN plus the
//! snapshot turnaround predictor.

use crate::fig11::sim_jobs;
use crate::fig12_13::{timeline_accuracy, WINDOWS};
use crate::support::{boxplot_json, print_boxplot, write_results};
use crate::ExperimentScale;
use prionn_core::run_online_prionn;
use prionn_sched::{burst_metrics, io_timeline, predict_turnarounds, JobIoInterval};
use prionn_workload::{stats, Trace, TraceConfig, TracePreset};
use serde_json::json;
use std::collections::HashMap;

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let n_samples = scale.turnaround_samples();
    let sample_size = scale.turnaround_sample();
    let nodes = scale.sim_nodes();
    println!(
        "Figures 14+15 — system IO with predicted turnaround \
         ({n_samples} samples × {sample_size} jobs, {nodes}-node cluster)"
    );

    let mut all_acc = Vec::new();
    let mut sens_by_window: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut prec_by_window: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut io_summary = Vec::new();

    for s in 0..n_samples {
        let mut cfg = TraceConfig::preset(TracePreset::CabLike, sample_size);
        cfg.seed ^= (s as u64 + 1) * 0x517c_c1b7;
        let trace = Trace::generate(&cfg);

        let online = scale.online();
        let preds = run_online_prionn(&trace.jobs, &online).expect("online run");
        let by_id: HashMap<u64, _> = preds.iter().map(|p| (p.job_id, *p)).collect();

        // The actual system: simulate the sample on the cluster with user
        // estimates for planning; per-minute IO from actual intervals and
        // actual bandwidths.
        let jobs = sim_jobs(&trace);
        let job_info: HashMap<u64, &prionn_workload::JobRecord> =
            trace.executed_jobs().map(|j| (j.id, j)).collect();
        let schedule = prionn_sched::engine::simulate(nodes, &jobs);

        let mut actual_iv = Vec::new();
        let mut predicted_iv = Vec::new();

        // Predicted turnarounds give the predicted execution windows.
        let prionn_runtime: HashMap<u64, u64> = preds
            .iter()
            .map(|p| (p.job_id, (p.runtime_minutes * 60.0).max(1.0) as u64))
            .collect();
        let tat = predict_turnarounds(nodes, &jobs, &prionn_runtime);
        let mut sorted_jobs = jobs.clone();
        sorted_jobs.sort_by_key(|j| (j.submit, j.id));

        for e in &schedule.entries {
            let j = job_info[&e.id];
            let p = &by_id[&e.id];
            if !p.model_trained {
                continue;
            }
            actual_iv.push(JobIoInterval {
                start: e.start,
                end: e.end,
                bandwidth: j.read_bandwidth() + j.write_bandwidth(),
            });
            // Predicted window: completion at submit + predicted turnaround,
            // running for the predicted runtime; predicted bandwidth is
            // predicted volume over predicted runtime.
            let &(_, pred_tat) = sorted_jobs
                .iter()
                .zip(&tat)
                .find(|(sj, _)| sj.id == e.id)
                .map(|(_, t)| t)
                .expect("every scheduled job has a turnaround prediction");
            let pred_runtime = prionn_runtime[&e.id].max(1);
            let pred_end = j.submit_time + pred_tat;
            let pred_start = pred_end.saturating_sub(pred_runtime);
            predicted_iv.push(JobIoInterval {
                start: pred_start,
                end: pred_end,
                bandwidth: (p.read_bytes + p.write_bytes) / pred_runtime as f64,
            });
        }

        let horizon = prionn_sched::io::horizon_minutes(&actual_iv)
            .max(prionn_sched::io::horizon_minutes(&predicted_iv));
        let actual = io_timeline(&actual_iv, horizon);
        let predicted = io_timeline(&predicted_iv, horizon);

        let active: Vec<f64> = actual.iter().copied().filter(|&v| v > 0.0).collect();
        io_summary.push((stats::mean(&active), stats::median(&active)));

        all_acc.extend(timeline_accuracy(&actual, &predicted));
        for w in WINDOWS {
            let m = burst_metrics(&actual, &predicted, w);
            sens_by_window.entry(w).or_default().push(m.sensitivity);
            prec_by_window.entry(w).or_default().push(m.precision);
        }
    }

    println!("Figure 14a — simulated aggregate IO per sample (mean, median B/s)");
    for (i, (mean, median)) in io_summary.iter().enumerate() {
        println!("  sample {i}: mean={mean:.3e}  median={median:.3e}");
    }
    println!("Figure 14b — system IO prediction accuracy (predicted turnaround)");
    let s_acc = print_boxplot("system IO accuracy", &all_acc);

    println!("Figure 15 — IO burst sensitivity/precision vs window (predicted turnaround)");
    let mut windows = serde_json::Map::new();
    for w in WINDOWS {
        let sens = stats::mean(&sens_by_window[&w]);
        let prec = stats::mean(&prec_by_window[&w]);
        println!(
            "  window {w:>2} min: sensitivity={:5.1}%  precision={:5.1}%",
            sens * 100.0,
            prec * 100.0
        );
        windows.insert(
            w.to_string(),
            json!({"sensitivity": sens, "precision": prec}),
        );
    }

    let out = json!({
        "figures": "14+15",
        "samples": n_samples,
        "sample_size": sample_size,
        "sim_nodes": nodes,
        "io_accuracy": boxplot_json(&s_acc),
        "burst_by_window": windows,
        "paper_shape": "accuracy drops vs perfect-TAT (Fig 12) but >50% of bursts are still caught at the 5-min window",
    });
    write_results("fig14_15_system_io_predicted_tat", &out);
    out
}
