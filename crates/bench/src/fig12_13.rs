//! Figures 12 & 13 — system IO prediction with **perfect turnaround
//! knowledge** (the paper's first evaluation, §4.3): execution intervals
//! come from the real trace; only per-job IO comes from PRIONN.
//!
//! Fig 12a: the actual aggregate IO distribution; Fig 12b: relative accuracy
//! of the predicted per-minute system IO; Fig 13: burst sensitivity and
//! precision across matching windows.

use crate::support::{boxplot_json, cab_trace, print_boxplot, write_results};
use crate::ExperimentScale;
use prionn_core::metrics::relative_accuracy;
use prionn_core::{run_online_prionn, JobPrediction};
use prionn_sched::{burst_metrics, io_timeline, JobIoInterval};
use prionn_workload::{stats, JobRecord};
use serde_json::json;
use std::collections::HashMap;

/// The standard burst window sweep (minutes), as in Figs 13/15.
pub const WINDOWS: [usize; 6] = [5, 10, 20, 30, 45, 60];

/// Build actual and predicted IO interval sets over the *trained* subset of
/// jobs, with perfect execution intervals.
pub fn perfect_tat_intervals(
    jobs: &[JobRecord],
    preds: &HashMap<u64, JobPrediction>,
) -> (Vec<JobIoInterval>, Vec<JobIoInterval>) {
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for j in jobs.iter().filter(|j| !j.cancelled) {
        let Some(p) = preds.get(&j.id) else { continue };
        if !p.model_trained {
            continue;
        }
        let (start, end) = (j.submit_time, j.submit_time + j.runtime_seconds);
        actual.push(JobIoInterval {
            start,
            end,
            bandwidth: j.read_bandwidth() + j.write_bandwidth(),
        });
        // Perfect runtime knowledge: predicted volume over the true interval.
        let secs = j.runtime_seconds.max(1) as f64;
        predicted.push(JobIoInterval {
            start,
            end,
            bandwidth: (p.read_bytes + p.write_bytes) / secs,
        });
    }
    (actual, predicted)
}

/// Per-minute relative accuracy over minutes with any activity.
pub fn timeline_accuracy(actual: &[f64], predicted: &[f64]) -> Vec<f64> {
    actual
        .iter()
        .zip(predicted)
        .filter(|(&a, &p)| a > 0.0 || p > 0.0)
        .map(|(&a, &p)| relative_accuracy(a, p))
        .collect()
}

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.trace_jobs());
    let online = scale.online();
    let preds = run_online_prionn(&trace.jobs, &online).expect("online run");
    let by_id: HashMap<u64, JobPrediction> = preds.iter().map(|p| (p.job_id, *p)).collect();

    let (actual_iv, predicted_iv) = perfect_tat_intervals(&trace.jobs, &by_id);
    let horizon = prionn_sched::io::horizon_minutes(&actual_iv);
    let actual = io_timeline(&actual_iv, horizon);
    let predicted = io_timeline(&predicted_iv, horizon);

    println!(
        "Figure 12a — actual aggregate IO ({} minutes, {} jobs)",
        horizon,
        actual_iv.len()
    );
    let active: Vec<f64> = actual.iter().copied().filter(|&v| v > 0.0).collect();
    println!(
        "  mean={:.3e} B/s  median={:.3e} B/s  burst threshold (mean+1σ)={:.3e} B/s",
        stats::mean(&active),
        stats::median(&active),
        prionn_sched::burst_threshold(&actual)
    );

    println!("Figure 12b — system IO prediction accuracy (perfect turnaround)");
    let acc = timeline_accuracy(&actual, &predicted);
    let s_acc = print_boxplot("system IO accuracy", &acc);

    println!("Figure 13 — IO burst sensitivity/precision vs window (perfect turnaround)");
    let mut windows = serde_json::Map::new();
    for w in WINDOWS {
        let m = burst_metrics(&actual, &predicted, w);
        println!(
            "  window {w:>2} min: sensitivity={:5.1}%  precision={:5.1}%  (bursts: {} actual / {} predicted)",
            m.sensitivity * 100.0,
            m.precision * 100.0,
            m.actual_bursts,
            m.predicted_bursts
        );
        windows.insert(
            w.to_string(),
            json!({"sensitivity": m.sensitivity, "precision": m.precision,
                   "actual_bursts": m.actual_bursts, "predicted_bursts": m.predicted_bursts}),
        );
    }

    let out = json!({
        "figures": "12+13",
        "jobs": actual_iv.len(),
        "horizon_minutes": horizon,
        "io_accuracy": boxplot_json(&s_acc),
        "burst_by_window": windows,
        "paper_shape": "mean IO accuracy ~64%, ~48% sensitivity and ~74% precision at the 5-min window, both rising with window size",
    });
    write_results("fig12_13_system_io_perfect_tat", &out);
    out
}
