//! Figure 8: (a) the actual runtime distribution of the trace; (b) runtime
//! prediction accuracy of user requests, the best traditional model (RF),
//! and PRIONN.

use crate::support::{boxplot_json, cab_trace, print_boxplot, runtime_accuracy, write_results};
use crate::ExperimentScale;
use prionn_core::baselines::user_predictions;
use prionn_core::{run_online_baseline, run_online_prionn, BaselineKind};
use prionn_workload::stats;
use serde_json::json;

/// Run the experiment.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.trace_jobs());
    let minutes: Vec<f64> = trace.executed_jobs().map(|j| j.runtime_minutes()).collect();

    println!(
        "Figure 8a — actual runtime distribution ({} executed jobs)",
        minutes.len()
    );
    let hist = stats::histogram(&minutes, 0.0, 960.0, 16);
    for (i, count) in hist.iter().enumerate() {
        println!("  [{:>3}-{:>3} min] {count}", i * 60, (i + 1) * 60);
    }
    println!(
        "  mean={:.1} min  median={:.1} min  under-60-min share={:.1}%",
        stats::mean(&minutes),
        stats::median(&minutes),
        minutes.iter().filter(|&&m| m < 60.0).count() as f64 / minutes.len() as f64 * 100.0
    );

    println!("Figure 8b — runtime prediction accuracy: user vs RF vs PRIONN");
    let online = scale.online();
    let user = user_predictions(&trace.jobs);
    let rf = run_online_baseline(
        &trace.jobs,
        BaselineKind::RandomForest,
        online.train_window,
        online.retrain_every,
        online.min_history,
    )
    .expect("RF online run");
    let mut cfg = online.clone();
    cfg.prionn.predict_io = false;
    let prionn = run_online_prionn(&trace.jobs, &cfg).expect("PRIONN online run");
    // Extension row: the same model with batch normalisation after each
    // convolution — not in the paper's architecture, shown for context.
    let mut cfg_bn = cfg.clone();
    cfg_bn.prionn.batch_norm = true;
    let prionn_bn = run_online_prionn(&trace.jobs, &cfg_bn).expect("PRIONN+BN online run");

    // Restrict all three methods to the post-warm-up jobs PRIONN predicted
    // with a trained model, so the comparison is apples-to-apples.
    let trained_ids: std::collections::HashSet<u64> = prionn
        .iter()
        .filter(|p| p.model_trained)
        .map(|p| p.job_id)
        .collect();
    let jobs_cmp: Vec<_> = trace
        .jobs
        .iter()
        .filter(|j| trained_ids.contains(&j.id))
        .cloned()
        .collect();

    let acc_user = runtime_accuracy(&jobs_cmp, &user, false);
    let acc_rf = runtime_accuracy(&jobs_cmp, &rf, false);
    let acc_prionn = runtime_accuracy(&jobs_cmp, &prionn, true);
    let s_user = print_boxplot("user request", &acc_user);
    let s_rf = print_boxplot("RF (Table-1 feats)", &acc_rf);
    let s_prionn = print_boxplot("PRIONN (2D-CNN)", &acc_prionn);
    let acc_bn = runtime_accuracy(&jobs_cmp, &prionn_bn, true);
    let s_bn = print_boxplot("PRIONN+BN (ext)", &acc_bn);

    // Steady state: drop the first half of the stream, where the
    // warm-started CNN is still maturing (the paper's 295k-job stream is
    // dominated by the mature regime).
    println!("Figure 8b (steady state, second half of the stream)");
    let steady = crate::support::steady_ids(&trace.jobs, 0.5);
    let jobs_steady: Vec<_> = jobs_cmp
        .iter()
        .filter(|j| steady.contains(&j.id))
        .cloned()
        .collect();
    let ss_user = print_boxplot(
        "user request",
        &runtime_accuracy(&jobs_steady, &user, false),
    );
    let ss_rf = print_boxplot(
        "RF (Table-1 feats)",
        &runtime_accuracy(&jobs_steady, &rf, false),
    );
    let ss_prionn = print_boxplot(
        "PRIONN (2D-CNN)",
        &runtime_accuracy(&jobs_steady, &prionn, true),
    );
    let ss_bn = print_boxplot(
        "PRIONN+BN (ext)",
        &runtime_accuracy(&jobs_steady, &prionn_bn, true),
    );

    let out = json!({
        "figure": "8",
        "jobs": jobs_cmp.len(),
        "runtime_minutes": {
            "mean": stats::mean(&minutes),
            "median": stats::median(&minutes),
            "histogram_60min_bins": hist,
        },
        "accuracy": {
            "user": boxplot_json(&s_user),
            "rf": boxplot_json(&s_rf),
            "prionn": boxplot_json(&s_prionn),
        },
        "accuracy_steady_state": {
            "user": boxplot_json(&ss_user),
            "rf": boxplot_json(&ss_rf),
            "prionn": boxplot_json(&ss_prionn),
            "prionn_batch_norm_ext": boxplot_json(&ss_bn),
        },
        "accuracy_prionn_batch_norm_ext": boxplot_json(&s_bn),
        "paper_shape": "PRIONN mean > RF mean > user mean; PRIONN median near 100%",
    });
    write_results("fig08_runtime_accuracy", &out);
    out
}
