//! Figure 7: distribution of runtime-prediction relative accuracy for each
//! deep model, with the word2vec mapping, under the online protocol.

use crate::support::{boxplot_json, cab_trace, print_boxplot, runtime_accuracy, write_results};
use crate::ExperimentScale;
use prionn_core::run_online_prionn;
use prionn_nn::ModelKind;
use prionn_text::TransformKind;
use serde_json::json;

/// Run the experiment; returns a boxplot summary per model kind.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.comparison_jobs());
    println!(
        "Figure 7 — runtime relative accuracy per deep model (word2vec, {} jobs)",
        trace.jobs.len()
    );
    let mut rows = serde_json::Map::new();
    for kind in ModelKind::ALL {
        let mut cfg = scale.online_with(TransformKind::Word2vec, kind);
        cfg.prionn.predict_io = false;
        let preds = run_online_prionn(&trace.jobs, &cfg).expect("online run");
        let acc = runtime_accuracy(&trace.jobs, &preds, true);
        let summary = print_boxplot(kind.label(), &acc);
        rows.insert(kind.label().to_string(), boxplot_json(&summary));
    }
    let out = json!({
        "figure": "7",
        "jobs": trace.jobs.len(),
        "accuracy_by_model": rows,
        "paper_shape": "NN and 2D-CNN clearly beat the 1D-CNN",
    });
    write_results("fig07_accuracy_model", &out);
    out
}
