//! Dev probe: train/holdout accuracy of the PRIONN CNN as a function of
//! epochs and width, to tune the quick-scale experiment configs.

use prionn_bench::support::cab_trace;
use prionn_core::metrics::relative_accuracy;
use prionn_core::{Prionn, PrionnConfig};
use prionn_workload::stats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(6);
    let width: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let bins: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(192);
    let lr: f32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1e-3);
    let batch: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(32);
    let model_kind = match args.get(5).map(|s| s.as_str()) {
        Some("nn") => prionn_nn::ModelKind::Nn,
        Some("cnn1d") => prionn_nn::ModelKind::Cnn1d,
        _ => prionn_nn::ModelKind::Cnn2d,
    };
    let transform = match args.get(6).map(|s| s.as_str()) {
        Some("binary") => prionn_text::TransformKind::Binary,
        Some("simple") => prionn_text::TransformKind::Simple,
        Some("onehot") => prionn_text::TransformKind::OneHot,
        _ => prionn_text::TransformKind::Word2vec,
    };

    let trace = cab_trace(600);
    let jobs: Vec<_> = trace.executed_jobs().cloned().collect();
    let (train, test) = jobs.split_at(400);

    let scripts: Vec<&str> = train.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = train.iter().map(|j| j.runtime_minutes()).collect();
    let test_scripts: Vec<&str> = test.iter().map(|j| j.script.as_str()).collect();
    let test_runtimes: Vec<f64> = test.iter().map(|j| j.runtime_minutes()).collect();

    // Online oracle ceiling: for each submission, predict the median runtime
    // of the same script among jobs *completed* before it (the information a
    // memorising model could have at prediction time).
    {
        let mut acc = Vec::new();
        let mut seen = 0usize;
        let mut n = 0usize;
        for (i, j) in jobs.iter().enumerate() {
            if i < 100 {
                continue; // warm-up, as in the online protocol
            }
            let now = j.submit_time;
            let prior: Vec<f64> = jobs[..i]
                .iter()
                .filter(|p| p.script == j.script && p.submit_time + p.runtime_seconds <= now)
                .map(|p| p.runtime_minutes())
                .collect();
            n += 1;
            let pred = if prior.is_empty() {
                stats::median(
                    &jobs[..i]
                        .iter()
                        .map(|p| p.runtime_minutes())
                        .collect::<Vec<_>>(),
                )
            } else {
                seen += 1;
                stats::median(&prior)
            };
            acc.push(relative_accuracy(j.runtime_minutes(), pred));
        }
        println!(
            "online oracle (per-script median of completed): mean={:.3} median={:.3} ({seen}/{n} had history)",
            stats::mean(&acc),
            stats::median(&acc),
        );
    }

    let cfg = PrionnConfig {
        predict_io: false,
        base_width: width,
        runtime_bins: bins,
        epochs: 1,
        lr,
        batch_size: batch,
        model: model_kind,
        transform,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &scripts).unwrap();
    println!("epochs width={width} bins={bins} lr={lr} batch={batch} model={model_kind:?} transform={transform:?}");
    for e in 1..=epochs {
        let t = std::time::Instant::now();
        let loss = model.probe_runtime_loss(&scripts, &runtimes).unwrap();
        model.retrain(&scripts, &runtimes, &[], &[]).unwrap();
        let train_preds = model.predict(&scripts).unwrap();
        let test_preds = model.predict(&test_scripts).unwrap();
        let train_acc: Vec<f64> = train_preds
            .iter()
            .zip(&runtimes)
            .map(|(p, &t)| relative_accuracy(t, p.runtime_minutes))
            .collect();
        let test_acc: Vec<f64> = test_preds
            .iter()
            .zip(&test_runtimes)
            .map(|(p, &t)| relative_accuracy(t, p.runtime_minutes))
            .collect();
        println!(
            "epoch {e:>2}: loss={loss:.4} train mean={:.3} median={:.3} | test mean={:.3} median={:.3} | {:.1}s",
            stats::mean(&train_acc),
            stats::median(&train_acc),
            stats::mean(&test_acc),
            stats::median(&test_acc),
            t.elapsed().as_secs_f64()
        );
    }
}
