//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p prionn-bench --bin experiments -- all
//! cargo run --release -p prionn-bench --bin experiments -- fig8 fig9 --scale standard
//! ```
//!
//! Results print as paper-style rows and persist as JSON under `results/`.

use prionn_bench::{
    ablations, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig11, fig12_13, fig14_15,
    ioaware_ext, table2, ExperimentScale,
};

const USAGE: &str = "usage: experiments [fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig11|fig12|fig13|fig14|fig15|table2|ablation|ioaware|all]... [--scale quick|standard|full]

fig12/fig13 run together (one harness), as do fig14/fig15.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Quick;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(s) = it.next().and_then(|v| ExperimentScale::parse(v)) else {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                };
                scale = s;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig3", "fig4", "fig5", "fig6", "fig7", "table2", "fig8", "fig9", "fig11", "fig12",
            "fig14", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!("PRIONN experiment harness — scale: {scale}\n");
    let start = std::time::Instant::now();
    for t in &targets {
        let run_start = std::time::Instant::now();
        match t.as_str() {
            "fig3" => drop(fig03::run(&scale)),
            "fig4" => drop(fig04::run(&scale)),
            "fig5" => drop(fig05::run(&scale)),
            "fig6" => drop(fig06::run(&scale)),
            "fig7" => drop(fig07::run(&scale)),
            "fig8" => drop(fig08::run(&scale)),
            "fig9" => drop(fig09::run(&scale)),
            "fig11" => drop(fig11::run(&scale)),
            "fig12" | "fig13" => drop(fig12_13::run(&scale)),
            "fig14" | "fig15" => drop(fig14_15::run(&scale)),
            "table2" => drop(table2::run(&scale)),
            "ablation" | "ablations" => drop(ablations::run(&scale)),
            "ioaware" => drop(ioaware_ext::run(&scale)),
            other => {
                eprintln!("unknown experiment: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        println!("  [{t} took {:.1}s]\n", run_start.elapsed().as_secs_f64());
    }
    println!(
        "all experiments done in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
