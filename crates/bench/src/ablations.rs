//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. **Warm-start vs cold-start retraining** — §2.3 claims learned
//!    parameters passing between retraining events is what makes 500-job
//!    windows sufficient;
//! 2. **Classifier vs regression head** — the paper uses a 960-bin
//!    classifier rather than a scalar regressor;
//! 3. **Training-window size** — the paper settled on 500 after sweeping
//!    50–5,000 (here swept at reduced scale).

use crate::support::{cab_trace, print_boxplot, runtime_accuracy, write_results};
use crate::ExperimentScale;
use prionn_core::predictor::HeadKind;
use prionn_core::run_online_prionn;
use serde_json::json;

/// Run all three ablations; returns a JSON report.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let trace = cab_trace(scale.comparison_jobs());
    println!("Ablations ({} jobs)", trace.jobs.len());

    let accuracy_with = |mutate: &dyn Fn(&mut prionn_core::OnlineConfig)| {
        let mut cfg = scale.online();
        cfg.prionn.predict_io = false;
        mutate(&mut cfg);
        let preds = run_online_prionn(&trace.jobs, &cfg).expect("online run");
        runtime_accuracy(&trace.jobs, &preds, true)
    };

    println!("1. warm-start vs cold-start retraining");
    let warm = accuracy_with(&|_| {});
    let cold = accuracy_with(&|c| c.cold_start = true);
    let s_warm = print_boxplot("warm-start", &warm);
    let s_cold = print_boxplot("cold-start", &cold);

    println!("2. classifier head vs regression head");
    let regr = accuracy_with(&|c| c.prionn.head = HeadKind::Regressor);
    let s_regr = print_boxplot("regression head", &regr);
    println!("   (classifier head = the warm-start row above)");

    println!("3. training-window size");
    let mut window_rows = serde_json::Map::new();
    for window in [60usize, 120, 250] {
        let acc = accuracy_with(&|c| c.train_window = window);
        let s = print_boxplot(&format!("window {window}"), &acc);
        window_rows.insert(
            window.to_string(),
            json!({"mean": s.mean, "median": s.median}),
        );
    }

    println!("4. batch normalisation after each conv (extension; paper: none)");
    let bn = accuracy_with(&|c| c.prionn.batch_norm = true);
    let s_bn = print_boxplot("with batch norm", &bn);
    println!("   (without = the warm-start row above)");

    println!("5. word2vec embedding width (paper mentions 4 and 8)");
    let mut dim_rows = serde_json::Map::new();
    for dim in [2usize, 4, 8] {
        let acc = accuracy_with(&|c| c.prionn.w2v.dim = dim);
        let s = print_boxplot(&format!("w2v dim {dim}"), &acc);
        dim_rows.insert(dim.to_string(), json!({"mean": s.mean, "median": s.median}));
    }

    let out = json!({
        "experiment": "ablations",
        "jobs": trace.jobs.len(),
        "warm_vs_cold": {
            "warm": {"mean": s_warm.mean, "median": s_warm.median},
            "cold": {"mean": s_cold.mean, "median": s_cold.median},
        },
        "head": {
            "classifier": {"mean": s_warm.mean, "median": s_warm.median},
            "regressor": {"mean": s_regr.mean, "median": s_regr.median},
        },
        "window_sweep": window_rows,
        "batch_norm": {
            "with": {"mean": s_bn.mean, "median": s_bn.median},
            "without": {"mean": s_warm.mean, "median": s_warm.median},
        },
        "w2v_dim_sweep": dim_rows,
        "paper_shape": "warm-start > cold-start at equal budget; accuracy saturates with window size",
    });
    write_results("ablations", &out);
    out
}
