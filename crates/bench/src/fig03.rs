//! Figure 3: time to transform a training batch of job scripts into
//! pixel-like representations, for each of the four transforms.

use crate::support::{cab_trace, time_it, write_results};
use crate::ExperimentScale;
use prionn_core::{Prionn, PrionnConfig};
use prionn_text::TransformKind;
use serde_json::json;

/// Run the experiment; returns `{transform: seconds}` plus metadata.
pub fn run(scale: &ExperimentScale) -> serde_json::Value {
    let n = scale.timing_batch();
    let trace = cab_trace(n);
    let scripts: Vec<&str> = trace.jobs.iter().map(|j| j.script.as_str()).collect();

    println!("Figure 3 — script→pixel transform time for {n} scripts");
    let mut rows = serde_json::Map::new();
    for kind in TransformKind::ALL {
        let mut cfg = PrionnConfig {
            transform: kind,
            predict_io: false,
            ..scale.prionn()
        };
        cfg.epochs = 0;
        let model = Prionn::new(cfg, &scripts).expect("prionn construction");
        let (_, secs) = time_it(|| model.map_scripts(&scripts).expect("mapping"));
        println!("  {:<10} {secs:8.3} s", kind.label());
        rows.insert(kind.label().to_string(), json!(secs));
    }
    let out = json!({
        "figure": "3",
        "batch_scripts": n,
        "seconds_per_batch": rows,
        "paper_shape": "one-hot is the slowest; binary/simple/word2vec are each fast",
    });
    write_results("fig03_transform_time", &out);
    out
}
