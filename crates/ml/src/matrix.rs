//! A minimal flat row-major feature matrix.

use crate::{MlError, Result};

/// A dense `n_rows × n_cols` feature matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n_cols: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// An empty matrix with a fixed column count.
    pub fn new(n_cols: usize) -> Self {
        FeatureMatrix {
            n_cols,
            data: Vec::new(),
        }
    }

    /// Build from a flat buffer.
    pub fn from_vec(n_cols: usize, data: Vec<f32>) -> Result<Self> {
        if n_cols == 0 {
            return Err(MlError::InvalidArgument("zero feature columns".into()));
        }
        if !data.len().is_multiple_of(n_cols) {
            return Err(MlError::DimensionMismatch {
                op: "from_vec",
                expected: n_cols,
                actual: data.len(),
            });
        }
        Ok(FeatureMatrix { n_cols, data })
    }

    /// Build from per-row slices.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(1);
        let mut m = FeatureMatrix::new(n_cols.max(1));
        for r in rows {
            m.push_row(r)?;
        }
        Ok(m)
    }

    /// Append one row.
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.n_cols {
            return Err(MlError::DimensionMismatch {
                op: "push_row",
                expected: self.n_cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Row count.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Column count.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// All rows, iterated.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks(self.n_cols)
    }

    /// Select a subset of rows by index (bootstrap sampling).
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.n_cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            n_cols: self.n_cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let mut m = FeatureMatrix::new(2);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn from_vec_validates_multiple() {
        assert!(FeatureMatrix::from_vec(3, vec![0.0; 7]).is_err());
        assert!(FeatureMatrix::from_vec(3, vec![0.0; 9]).is_ok());
        assert!(FeatureMatrix::from_vec(0, vec![]).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let m = FeatureMatrix::from_vec(1, vec![10., 20., 30.]).unwrap();
        let s = m.select_rows(&[2, 0, 0]);
        assert_eq!(s.row(0), &[30.]);
        assert_eq!(s.row(1), &[10.]);
        assert_eq!(s.row(2), &[10.]);
    }
}
