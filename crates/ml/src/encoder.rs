//! Label encoding for categorical string features (paper §2.1: "We use a
//! label encoder to transform each parsed feature into a numerical value in
//! which we assign a unique integer to each unique string value").

use std::collections::HashMap;

/// Assigns a stable unique integer to each distinct string value.
///
/// Values first seen at transform time are assigned fresh ids (the online
/// protocol keeps encountering new users/job names), so the encoder is
/// `fit`-free: [`LabelEncoder::encode`] both looks up and extends.
#[derive(Debug, Default, Clone)]
pub struct LabelEncoder {
    map: HashMap<String, usize>,
}

impl LabelEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        LabelEncoder::default()
    }

    /// The integer code for `value`, allocating a new one on first sight.
    pub fn encode(&mut self, value: &str) -> usize {
        let next = self.map.len();
        *self.map.entry(value.to_string()).or_insert(next)
    }

    /// The code for `value` if it has been seen, without extending.
    pub fn lookup(&self, value: &str) -> Option<usize> {
        self.map.get(value).copied()
    }

    /// Number of distinct values seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_sequential_codes() {
        let mut e = LabelEncoder::new();
        assert_eq!(e.encode("alice"), 0);
        assert_eq!(e.encode("bob"), 1);
        assert_eq!(e.encode("alice"), 0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn lookup_does_not_extend() {
        let mut e = LabelEncoder::new();
        e.encode("x");
        assert_eq!(e.lookup("x"), Some(0));
        assert_eq!(e.lookup("y"), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn codes_are_stable_across_repeats() {
        let mut e = LabelEncoder::new();
        let first: Vec<usize> = ["a", "b", "c", "a"].iter().map(|s| e.encode(s)).collect();
        let second: Vec<usize> = ["a", "b", "c", "a"].iter().map(|s| e.encode(s)).collect();
        assert_eq!(first, second);
    }
}
