//! Random forest regression: bagging + per-split feature subsampling, with
//! trees grown in parallel by rayon.

use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTreeConfig, DecisionTreeRegressor};
use crate::{MlError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Hyperparameters for [`RandomForestRegressor`].
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree config. If `max_features` is `None`, the forest uses
    /// `ceil(n_features / 3)` — the scikit-learn regression default the
    /// paper's baselines rely on.
    pub tree: DecisionTreeConfig,
    /// Seed for bootstrap/feature sampling.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 50,
            tree: DecisionTreeConfig::default(),
            seed: 0x5eed,
        }
    }
}

/// Bagged ensemble of [`DecisionTreeRegressor`]s; prediction is the mean of
/// the per-tree predictions.
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Fit the forest. Each tree sees a bootstrap resample of the rows and
    /// subsamples features at every split.
    pub fn fit(x: &FeatureMatrix, y: &[f32], cfg: &RandomForestConfig) -> Result<Self> {
        if x.n_rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                op: "forest_fit",
                expected: x.n_rows(),
                actual: y.len(),
            });
        }
        if y.is_empty() {
            return Err(MlError::InvalidArgument("fit on empty dataset".into()));
        }
        if cfg.n_trees == 0 {
            return Err(MlError::InvalidArgument(
                "forest needs at least one tree".into(),
            ));
        }
        let mut tree_cfg = cfg.tree.clone();
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(x.n_cols().div_ceil(3));
        }
        let n = y.len();
        let trees: Result<Vec<DecisionTreeRegressor>> = (0..cfg.n_trees)
            .into_par_iter()
            .map(|t| {
                // Independent deterministic stream per tree.
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15),
                );
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let bx = x.select_rows(&sample);
                let by: Vec<f32> = sample.iter().map(|&i| y[i]).collect();
                DecisionTreeRegressor::fit(&bx, &by, &tree_cfg, &mut rng)
            })
            .collect();
        Ok(RandomForestRegressor { trees: trees? })
    }

    /// Predict one sample (mean over trees).
    pub fn predict_one(&self, row: &[f32]) -> Result<f32> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted("RandomForestRegressor"));
        }
        let mut sum = 0.0f32;
        for t in &self.trees {
            sum += t.predict_one(row)?;
        }
        Ok(sum / self.trees.len() as f32)
    }

    /// Predict a batch, parallel over rows.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f32>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted("RandomForestRegressor"));
        }
        (0..x.n_rows())
            .into_par_iter()
            .map(|i| self.predict_one(x.row(i)))
            .collect()
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_step() -> (FeatureMatrix, Vec<f32>) {
        let mut x = FeatureMatrix::new(1);
        let mut y = Vec::new();
        for i in 0..200 {
            let v = i as f32 / 200.0;
            let noise = ((i * 2654435761u64 as usize) % 100) as f32 / 100.0 - 0.5;
            x.push_row(&[v]).unwrap();
            y.push(if v < 0.5 { 10.0 } else { 20.0 } + noise);
        }
        (x, y)
    }

    #[test]
    fn fits_and_predicts_reasonably() {
        let (x, y) = noisy_step();
        let f = RandomForestRegressor::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        assert!((f.predict_one(&[0.25]).unwrap() - 10.0).abs() < 1.0);
        assert!((f.predict_one(&[0.75]).unwrap() - 20.0).abs() < 1.0);
    }

    #[test]
    fn is_deterministic_for_seed() {
        let (x, y) = noisy_step();
        let cfg = RandomForestConfig {
            n_trees: 10,
            ..Default::default()
        };
        let a = RandomForestRegressor::fit(&x, &y, &cfg).unwrap();
        let b = RandomForestRegressor::fit(&x, &y, &cfg).unwrap();
        assert_eq!(
            a.predict_one(&[0.33]).unwrap(),
            b.predict_one(&[0.33]).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_step();
        let a = RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 5,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 5,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Not a hard guarantee point-wise, but with noisy data the ensembles
        // almost surely differ somewhere on a fine grid.
        let grid: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let ga: Vec<f32> = grid.iter().map(|&v| a.predict_one(&[v]).unwrap()).collect();
        let gb: Vec<f32> = grid.iter().map(|&v| b.predict_one(&[v]).unwrap()).collect();
        assert_ne!(ga, gb);
    }

    #[test]
    fn batch_matches_pointwise() {
        let (x, y) = noisy_step();
        let f = RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let batch = f.predict(&x).unwrap();
        for i in (0..x.n_rows()).step_by(37) {
            assert_eq!(batch[i], f.predict_one(x.row(i)).unwrap());
        }
    }

    #[test]
    fn rejects_zero_trees_and_unfitted_use() {
        let (x, y) = noisy_step();
        assert!(RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        let f = RandomForestRegressor::default();
        assert!(f.predict_one(&[0.0]).is_err());
    }

    #[test]
    fn predictions_stay_within_target_range() {
        // Every tree leaf holds a mean of targets, and the forest averages
        // leaves, so predictions are convex combinations of the training
        // targets — even far outside the training domain.
        let (x, y) = noisy_step();
        let (lo, hi) = y
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let f = RandomForestRegressor::fit(
            &x,
            &y,
            &RandomForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        )
        .unwrap();
        for q in [-100.0f32, -1.0, 0.0, 0.5, 1.0, 100.0] {
            let p = f.predict_one(&[q]).unwrap();
            assert!(
                (lo..=hi).contains(&p),
                "prediction {p} outside [{lo}, {hi}] at {q}"
            );
        }
    }

    #[test]
    fn more_trees_converge_toward_big_ensemble() {
        // The 10-tree forest's prediction should be closer to the 80-tree
        // forest's than the 1-tree "forest" is, on average over a grid:
        // Monte-Carlo convergence of bagging.
        let (x, y) = noisy_step();
        let fit = |n: usize| {
            RandomForestRegressor::fit(
                &x,
                &y,
                &RandomForestConfig {
                    n_trees: n,
                    seed: 0xabc,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let (f1, f10, f80) = (fit(1), fit(10), fit(80));
        let grid: Vec<f32> = (0..50).map(|i| i as f32 / 50.0).collect();
        let dist = |a: &RandomForestRegressor, b: &RandomForestRegressor| -> f32 {
            grid.iter()
                .map(|&v| {
                    let d = a.predict_one(&[v]).unwrap() - b.predict_one(&[v]).unwrap();
                    d * d
                })
                .sum()
        };
        assert!(dist(&f10, &f80) < dist(&f1, &f80));
    }
}
