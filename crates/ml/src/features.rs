//! Manual feature extraction from SLURM job scripts — the Table-1 pipeline
//! the paper replicates from Smith et al. for its traditional-ML baselines.
//!
//! The parser recognises the common `#SBATCH` directive spellings. As the
//! paper notes, this style of parsing "proved difficult due to
//! inconsistencies in job script format" — which is exactly the motivation
//! for PRIONN's whole-script mapping. Fields the script does not carry
//! (user, group, submission directory) come from scheduler metadata and are
//! supplied alongside the script text.

use crate::encoder::LabelEncoder;

/// Names of the nine Table-1 features, in order.
pub const TABLE1_FEATURES: [&str; 9] = [
    "requested_time_hours",
    "requested_nodes",
    "requested_tasks",
    "user",
    "group",
    "account",
    "job_name",
    "working_directory",
    "submission_directory",
];

/// Raw (pre-encoding) features for one job: parsed script fields plus
/// scheduler metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawJobFeatures {
    /// User-requested wall time, hours.
    pub requested_time_hours: f32,
    /// User-requested node count.
    pub requested_nodes: f32,
    /// User-requested task count.
    pub requested_tasks: f32,
    /// Login user (metadata).
    pub user: String,
    /// Login group (metadata).
    pub group: String,
    /// Account / bank.
    pub account: String,
    /// Job name.
    pub job_name: String,
    /// Working directory for execution.
    pub working_directory: String,
    /// Directory the job was submitted from (metadata).
    pub submission_directory: String,
}

impl RawJobFeatures {
    /// Parse the script-resident fields out of a SLURM job script and merge
    /// in the metadata-only fields.
    pub fn parse(script: &str, user: &str, group: &str, submission_directory: &str) -> Self {
        let mut f = RawJobFeatures {
            user: user.to_string(),
            group: group.to_string(),
            submission_directory: submission_directory.to_string(),
            ..Default::default()
        };
        for line in script.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("#SBATCH") else {
                continue;
            };
            let rest = rest.trim();
            if let Some(v) = directive_value(rest, "-t", "--time") {
                f.requested_time_hours = parse_time_to_hours(&v).unwrap_or(0.0);
            } else if let Some(v) = directive_value(rest, "-N", "--nodes") {
                f.requested_nodes = v.parse().unwrap_or(0.0);
            } else if let Some(v) = directive_value(rest, "-n", "--ntasks") {
                f.requested_tasks = v.parse().unwrap_or(0.0);
            } else if let Some(v) = directive_value(rest, "-J", "--job-name") {
                f.job_name = v;
            } else if let Some(v) = directive_value(rest, "-A", "--account") {
                f.account = v;
            } else if let Some(v) = directive_value(rest, "-D", "--chdir") {
                f.working_directory = v;
            }
        }
        f
    }
}

/// Extract the value of `#SBATCH <short> v` / `#SBATCH <long>=v` /
/// `#SBATCH <long> v` forms.
fn directive_value(rest: &str, short: &str, long: &str) -> Option<String> {
    if let Some(v) = rest.strip_prefix(short) {
        // Short option must be followed by whitespace or '=': avoid matching
        // "-n" against "-nodes"-style typos or "-N" against "-Nfoo".
        let v = v.strip_prefix('=').unwrap_or(v);
        if v.starts_with(char::is_whitespace) || v.is_empty() {
            let val = v.trim();
            if !val.is_empty() {
                return Some(val.to_string());
            }
        }
        // fall through: might still match the long form below
    }
    if let Some(v) = rest.strip_prefix(long) {
        let v = v.strip_prefix('=').unwrap_or(v);
        let val = v.trim();
        if !val.is_empty() && (rest.as_bytes().get(long.len()) != Some(&b'-')) {
            return Some(val.to_string());
        }
    }
    None
}

/// Parse SLURM time formats (`minutes`, `MM:SS`, `HH:MM:SS`, `D-HH:MM:SS`)
/// into hours.
pub fn parse_time_to_hours(s: &str) -> Option<f32> {
    let s = s.trim();
    let (days, rest) = match s.split_once('-') {
        Some((d, r)) => (d.parse::<f32>().ok()?, r),
        None => (0.0, s),
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let hours = match parts.as_slice() {
        [m] => m.parse::<f32>().ok()? / 60.0,
        [m, sec] => m.parse::<f32>().ok()? / 60.0 + sec.parse::<f32>().ok()? / 3600.0,
        [h, m, sec] => {
            h.parse::<f32>().ok()?
                + m.parse::<f32>().ok()? / 60.0
                + sec.parse::<f32>().ok()? / 3600.0
        }
        _ => return None,
    };
    Some(days * 24.0 + hours)
}

/// Turns [`RawJobFeatures`] into the 9-wide numeric vectors Table 1
/// describes, label-encoding every categorical field.
#[derive(Debug, Default, Clone)]
pub struct FeatureExtractor {
    user: LabelEncoder,
    group: LabelEncoder,
    account: LabelEncoder,
    job_name: LabelEncoder,
    workdir: LabelEncoder,
    submit_dir: LabelEncoder,
}

impl FeatureExtractor {
    /// A fresh extractor with empty encoders.
    pub fn new() -> Self {
        FeatureExtractor::default()
    }

    /// Encode one job's features, extending the label encoders as needed.
    pub fn extract(&mut self, raw: &RawJobFeatures) -> Vec<f32> {
        vec![
            raw.requested_time_hours,
            raw.requested_nodes,
            raw.requested_tasks,
            self.user.encode(&raw.user) as f32,
            self.group.encode(&raw.group) as f32,
            self.account.encode(&raw.account) as f32,
            self.job_name.encode(&raw.job_name) as f32,
            self.workdir.encode(&raw.working_directory) as f32,
            self.submit_dir.encode(&raw.submission_directory) as f32,
        ]
    }

    /// Feature vector width.
    pub fn n_features(&self) -> usize {
        TABLE1_FEATURES.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "#!/bin/bash\n\
        #SBATCH -N 16\n\
        #SBATCH --ntasks=256\n\
        #SBATCH -t 04:30:00\n\
        #SBATCH -J lammps_prod\n\
        #SBATCH --account=phys_dept\n\
        #SBATCH -D /p/lustre/alice/run42\n\
        srun ./lmp -in in.melt\n";

    #[test]
    fn parses_all_script_fields() {
        let f = RawJobFeatures::parse(SCRIPT, "alice", "physics", "/home/alice");
        assert_eq!(f.requested_nodes, 16.0);
        assert_eq!(f.requested_tasks, 256.0);
        assert!((f.requested_time_hours - 4.5).abs() < 1e-5);
        assert_eq!(f.job_name, "lammps_prod");
        assert_eq!(f.account, "phys_dept");
        assert_eq!(f.working_directory, "/p/lustre/alice/run42");
        assert_eq!(f.user, "alice");
        assert_eq!(f.submission_directory, "/home/alice");
    }

    #[test]
    fn long_and_short_forms_agree() {
        let a = RawJobFeatures::parse("#SBATCH -N 4\n#SBATCH -t 60\n", "u", "g", "/");
        let b = RawJobFeatures::parse("#SBATCH --nodes=4\n#SBATCH --time=60\n", "u", "g", "/");
        assert_eq!(a.requested_nodes, b.requested_nodes);
        assert_eq!(a.requested_time_hours, b.requested_time_hours);
    }

    #[test]
    fn missing_directives_default_to_zero_or_empty() {
        let f = RawJobFeatures::parse("echo hi\n", "u", "g", "/");
        assert_eq!(f.requested_nodes, 0.0);
        assert_eq!(f.job_name, "");
    }

    #[test]
    fn time_formats() {
        assert_eq!(parse_time_to_hours("60"), Some(1.0));
        assert_eq!(parse_time_to_hours("90:00"), Some(1.5));
        assert_eq!(parse_time_to_hours("02:30:00"), Some(2.5));
        assert_eq!(parse_time_to_hours("1-12:00:00"), Some(36.0));
        assert_eq!(parse_time_to_hours("junk"), None);
    }

    #[test]
    fn n_and_upper_n_do_not_collide() {
        let f = RawJobFeatures::parse("#SBATCH -n 32\n#SBATCH -N 2\n", "u", "g", "/");
        assert_eq!(f.requested_tasks, 32.0);
        assert_eq!(f.requested_nodes, 2.0);
    }

    #[test]
    fn extractor_produces_stable_codes() {
        let mut ex = FeatureExtractor::new();
        let f1 = RawJobFeatures::parse(SCRIPT, "alice", "physics", "/home/alice");
        let f2 = RawJobFeatures::parse(SCRIPT, "bob", "physics", "/home/bob");
        let v1 = ex.extract(&f1);
        let v2 = ex.extract(&f2);
        let v1b = ex.extract(&f1);
        assert_eq!(v1.len(), 9);
        assert_eq!(v1, v1b, "same job encodes identically");
        assert_ne!(v1[3], v2[3], "different users get different codes");
        assert_eq!(v1[4], v2[4], "same group shares a code");
    }
}
