//! CART regression tree with variance-reduction splits.

use crate::matrix::FeatureMatrix;
use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyperparameters for [`DecisionTreeRegressor`].
#[derive(Debug, Clone)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Features to consider per split; `None` = all (single trees),
    /// `Some(m)` = a random subset of `m` (random forests).
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 16,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A regression tree grown greedily by maximising the reduction in the sum
/// of squared errors (equivalently, variance reduction).
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeRegressor {
    nodes: Vec<Node>,
}

impl DecisionTreeRegressor {
    /// Fit a tree on `(x, y)` with the given config and RNG (the RNG only
    /// matters when `max_features` subsampling is active).
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f32],
        cfg: &DecisionTreeConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if x.n_rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                op: "tree_fit",
                expected: x.n_rows(),
                actual: y.len(),
            });
        }
        if y.is_empty() {
            return Err(MlError::InvalidArgument("fit on empty dataset".into()));
        }
        if cfg.min_samples_leaf == 0 {
            return Err(MlError::InvalidArgument(
                "min_samples_leaf must be >= 1".into(),
            ));
        }
        let mut tree = DecisionTreeRegressor { nodes: Vec::new() };
        let indices: Vec<usize> = (0..y.len()).collect();
        tree.grow(x, y, indices, 0, cfg, rng);
        Ok(tree)
    }

    fn grow(
        &mut self,
        x: &FeatureMatrix,
        y: &[f32],
        indices: Vec<usize>,
        depth: usize,
        cfg: &DecisionTreeConfig,
        rng: &mut impl Rng,
    ) -> usize {
        let mean = indices.iter().map(|&i| y[i]).sum::<f32>() / indices.len() as f32;
        let stop = depth >= cfg.max_depth
            || indices.len() < 2 * cfg.min_samples_leaf
            || indices.iter().all(|&i| (y[i] - mean).abs() < 1e-12);
        if !stop {
            if let Some((feature, threshold)) = best_split(x, y, &indices, cfg, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| x.row(i)[feature] <= threshold);
                if left_idx.len() >= cfg.min_samples_leaf && right_idx.len() >= cfg.min_samples_leaf
                {
                    // Reserve this node's slot, then grow children.
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean });
                    let left = self.grow(x, y, left_idx, depth + 1, cfg, rng);
                    let right = self.grow(x, y, right_idx, depth + 1, cfg, rng);
                    self.nodes[id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return id;
                }
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        id
    }

    /// Predict one sample.
    pub fn predict_one(&self, row: &[f32]) -> Result<f32> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted("DecisionTreeRegressor"));
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return Ok(*value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a batch.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f32>> {
        x.rows().map(|r| self.predict_one(r)).collect()
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Find the `(feature, threshold)` pair with maximal SSE reduction, scanning
/// each candidate feature in sorted order with prefix sums.
fn best_split(
    x: &FeatureMatrix,
    y: &[f32],
    indices: &[usize],
    cfg: &DecisionTreeConfig,
    rng: &mut impl Rng,
) -> Option<(usize, f32)> {
    let n_features = x.n_cols();
    let mut candidates: Vec<usize> = (0..n_features).collect();
    if let Some(m) = cfg.max_features {
        candidates.shuffle(rng);
        candidates.truncate(m.clamp(1, n_features));
    }

    let n = indices.len() as f64;
    let total: f64 = indices.iter().map(|&i| y[i] as f64).sum();
    let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, score)

    let mut order: Vec<usize> = Vec::with_capacity(indices.len());
    for &feature in &candidates {
        order.clear();
        order.extend_from_slice(indices);
        order.sort_by(|&a, &b| {
            x.row(a)[feature]
                .partial_cmp(&x.row(b)[feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0f64;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += y[i] as f64;
            let v = x.row(i)[feature];
            let v_next = x.row(order[k + 1])[feature];
            if v == v_next {
                continue; // cannot split between equal values
            }
            let left_n = (k + 1) as f64;
            let right_n = n - left_n;
            if (left_n as usize) < cfg.min_samples_leaf || (right_n as usize) < cfg.min_samples_leaf
            {
                continue;
            }
            // Maximising sum-of-squared-means is equivalent to minimising
            // within-node SSE (total sum of squares is constant).
            let right_sum = total - left_sum;
            let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((feature, (v + v_next) * 0.5, score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(13)
    }

    fn step_data() -> (FeatureMatrix, Vec<f32>) {
        // y = 10 if x < 0.5 else 20, on a 1-D grid.
        let xs: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v < 0.5 { 10.0 } else { 20.0 })
            .collect();
        (FeatureMatrix::from_vec(1, xs).unwrap(), y)
    }

    #[test]
    fn fits_step_function_exactly() {
        let (x, y) = step_data();
        let t =
            DecisionTreeRegressor::fit(&x, &y, &DecisionTreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(t.predict_one(&[0.2]).unwrap(), 10.0);
        assert_eq!(t.predict_one(&[0.9]).unwrap(), 20.0);
    }

    #[test]
    fn depth_zero_tree_predicts_mean() {
        let (x, y) = step_data();
        let cfg = DecisionTreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = DecisionTreeRegressor::fit(&x, &y, &cfg, &mut rng()).unwrap();
        let mean = y.iter().sum::<f32>() / y.len() as f32;
        assert!((t.predict_one(&[0.3]).unwrap() - mean).abs() < 1e-4);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (x, y) = step_data();
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 60,
            ..Default::default()
        };
        let t = DecisionTreeRegressor::fit(&x, &y, &cfg, &mut rng()).unwrap();
        // 100 samples cannot split into two leaves of >= 60.
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise-ish, feature 1 carries the signal.
        let mut x = FeatureMatrix::new(2);
        let mut y = Vec::new();
        for i in 0..50 {
            let noise = (i * 7919 % 100) as f32 / 100.0;
            let signal = if i % 2 == 0 { 0.0 } else { 1.0 };
            x.push_row(&[noise, signal]).unwrap();
            y.push(signal * 100.0);
        }
        let t =
            DecisionTreeRegressor::fit(&x, &y, &DecisionTreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(t.predict_one(&[0.99, 0.0]).unwrap(), 0.0);
        assert_eq!(t.predict_one(&[0.01, 1.0]).unwrap(), 100.0);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let x = FeatureMatrix::from_vec(1, (0..20).map(|i| i as f32).collect()).unwrap();
        let y = vec![5.0; 20];
        let t =
            DecisionTreeRegressor::fit(&x, &y, &DecisionTreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[100.0]).unwrap(), 5.0);
    }

    #[test]
    fn rejects_mismatched_lengths_and_empty() {
        let x = FeatureMatrix::from_vec(1, vec![1.0, 2.0]).unwrap();
        assert!(
            DecisionTreeRegressor::fit(&x, &[1.0], &DecisionTreeConfig::default(), &mut rng())
                .is_err()
        );
        let empty = FeatureMatrix::new(1);
        assert!(DecisionTreeRegressor::fit(
            &empty,
            &[],
            &DecisionTreeConfig::default(),
            &mut rng()
        )
        .is_err());
    }

    #[test]
    fn unfitted_tree_errors() {
        let t = DecisionTreeRegressor::default();
        assert!(matches!(t.predict_one(&[1.0]), Err(MlError::NotFitted(_))));
    }

    #[test]
    fn deeper_trees_fit_no_worse_on_train() {
        let xs: Vec<f32> = (0..200).map(|i| i as f32 / 200.0).collect();
        let y: Vec<f32> = xs.iter().map(|&v| (v * 12.0).sin()).collect();
        let x = FeatureMatrix::from_vec(1, xs).unwrap();
        let sse = |depth: usize| {
            let cfg = DecisionTreeConfig {
                max_depth: depth,
                min_samples_leaf: 1,
                ..Default::default()
            };
            let t = DecisionTreeRegressor::fit(&x, &y, &cfg, &mut rng()).unwrap();
            t.predict(&x)
                .unwrap()
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
        };
        assert!(sse(8) <= sse(2));
        assert!(sse(2) <= sse(0));
    }
}
