//! Traditional machine-learning baselines for PRIONN (paper §2.1–2.2).
//!
//! The paper compares its deep models against the previous state of
//! practice: **Random Forest**, **Decision Tree**, and **k-Nearest
//! Neighbors** regressors fed with *manually extracted* job-script features
//! (Table 1: requested time/nodes/tasks, user, group, account, job name,
//! working directory, submission directory), each categorical feature label-
//! encoded to an integer. This crate implements all of it from scratch:
//!
//! * [`matrix`] — a flat row-major feature matrix,
//! * [`encoder`] — the label encoder for categorical string features,
//! * [`features`] — the Table-1 SLURM job-script parser,
//! * [`tree`] — a CART regression tree (variance-reduction splits),
//! * [`forest`] — bagged, feature-subsampled, rayon-parallel random forest,
//! * [`knn`] — brute-force k-nearest-neighbour regression.

pub mod encoder;
pub mod error;
pub mod features;
pub mod forest;
pub mod knn;
pub mod matrix;
pub mod tree;

pub use encoder::LabelEncoder;
pub use error::MlError;
pub use features::{parse_time_to_hours, FeatureExtractor, RawJobFeatures, TABLE1_FEATURES};
pub use forest::{RandomForestConfig, RandomForestRegressor};
pub use knn::KnnRegressor;
pub use matrix::FeatureMatrix;
pub use tree::{DecisionTreeConfig, DecisionTreeRegressor};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, MlError>;
