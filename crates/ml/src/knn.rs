//! Brute-force k-nearest-neighbour regression.

use crate::matrix::FeatureMatrix;
use crate::{MlError, Result};
use rayon::prelude::*;

/// kNN regression by Euclidean distance; prediction is the mean target of
/// the `k` nearest training rows.
///
/// As the paper observes, label-encoded categoricals make Euclidean distance
/// semantically shaky — kNN is the weakest baseline — but it is part of the
/// comparison set, so it is implemented faithfully.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    x: FeatureMatrix,
    y: Vec<f32>,
}

impl KnnRegressor {
    /// Store the training set. `k` is clamped to the training size at
    /// prediction time.
    pub fn fit(x: FeatureMatrix, y: Vec<f32>, k: usize) -> Result<Self> {
        if x.n_rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                op: "knn_fit",
                expected: x.n_rows(),
                actual: y.len(),
            });
        }
        if y.is_empty() {
            return Err(MlError::InvalidArgument("fit on empty dataset".into()));
        }
        if k == 0 {
            return Err(MlError::InvalidArgument("k must be >= 1".into()));
        }
        Ok(KnnRegressor { k, x, y })
    }

    /// Predict one sample.
    pub fn predict_one(&self, row: &[f32]) -> Result<f32> {
        if row.len() != self.x.n_cols() {
            return Err(MlError::DimensionMismatch {
                op: "knn_predict",
                expected: self.x.n_cols(),
                actual: row.len(),
            });
        }
        let k = self.k.min(self.y.len());
        // Keep the k smallest distances with a simple bounded insertion —
        // k is tiny (paper-style 3..10), so this beats sorting everything.
        let mut best: Vec<(f32, f32)> = Vec::with_capacity(k + 1); // (dist2, y)
        for (i, train_row) in self.x.rows().enumerate() {
            let d2: f32 = train_row
                .iter()
                .zip(row)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            let pos = best.partition_point(|&(d, _)| d <= d2);
            if pos < k {
                best.insert(pos, (d2, self.y[i]));
                best.truncate(k);
            }
        }
        Ok(best.iter().map(|&(_, y)| y).sum::<f32>() / best.len() as f32)
    }

    /// Predict a batch, parallel over query rows.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f32>> {
        (0..x.n_rows())
            .into_par_iter()
            .map(|i| self.predict_one(x.row(i)))
            .collect()
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (FeatureMatrix, Vec<f32>) {
        let x = FeatureMatrix::from_vec(1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]).unwrap();
        let y = vec![0.0, 0.0, 0.0, 100.0, 100.0, 100.0];
        (x, y)
    }

    #[test]
    fn one_nn_matches_nearest_cluster() {
        let (x, y) = data();
        let m = KnnRegressor::fit(x, y, 1).unwrap();
        assert_eq!(m.predict_one(&[1.4]).unwrap(), 0.0);
        assert_eq!(m.predict_one(&[10.6]).unwrap(), 100.0);
    }

    #[test]
    fn k3_averages_within_cluster() {
        let (x, y) = data();
        let m = KnnRegressor::fit(x, y, 3).unwrap();
        assert_eq!(m.predict_one(&[1.0]).unwrap(), 0.0);
        assert_eq!(m.predict_one(&[11.0]).unwrap(), 100.0);
    }

    #[test]
    fn k_larger_than_train_set_uses_all() {
        let (x, y) = data();
        let m = KnnRegressor::fit(x, y, 100).unwrap();
        assert_eq!(m.predict_one(&[5.0]).unwrap(), 50.0);
    }

    #[test]
    fn exact_training_point_with_k1_reproduces_target() {
        let (x, y) = data();
        let m = KnnRegressor::fit(x.clone(), y.clone(), 1).unwrap();
        for (i, target) in y.iter().enumerate() {
            assert_eq!(m.predict_one(x.row(i)).unwrap(), *target);
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        let (x, y) = data();
        assert!(KnnRegressor::fit(x.clone(), y[..3].to_vec(), 1).is_err());
        assert!(KnnRegressor::fit(x.clone(), y.clone(), 0).is_err());
        let m = KnnRegressor::fit(x, y, 1).unwrap();
        assert!(m.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn batch_matches_pointwise() {
        let (x, y) = data();
        let m = KnnRegressor::fit(x.clone(), y, 2).unwrap();
        let q = FeatureMatrix::from_vec(1, vec![0.5, 5.0, 11.5]).unwrap();
        let batch = m.predict(&q).unwrap();
        for (i, b) in batch.iter().enumerate() {
            assert_eq!(*b, m.predict_one(q.row(i)).unwrap());
        }
    }
}
