//! Error type for the classic-ML crate.

use std::fmt;

/// Errors raised by the classic-ML models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// A matrix/target dimension disagreement.
    DimensionMismatch {
        /// What was being done.
        op: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// The model was asked to predict before being fitted.
    NotFitted(&'static str),
    /// An invalid hyperparameter.
    InvalidArgument(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected {expected} elements, got {actual}")
            }
            MlError::NotFitted(model) => write!(f, "{model} used before fit"),
            MlError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}
