//! Optimisers: SGD with momentum and Adam.
//!
//! State is keyed by *parameter slot* — the position of the parameter in the
//! model's stable `visit_params` traversal — so optimiser state survives the
//! paper's warm-started retraining cycles (the architecture never changes
//! between retrains, only the data does).

use crate::Result;
use prionn_tensor::{Tensor, TensorError};

/// Portable optimiser state: the bias-correction step count plus the moment
/// buffers of every parameter slot, in slot order.
///
/// Each slot holds zero or more same-length `f32` buffers: zero when the
/// slot was never touched (lazy init), one velocity buffer for SGD with
/// momentum, and the `[m, v]` pair for Adam. Checkpointing this alongside
/// the weights is what keeps warm-started retraining bit-identical across a
/// save/load cycle — Adam's effective step size depends on `t` and both
/// moment estimates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OptimizerState {
    /// Time step (`t` in Adam's bias correction); 0 for stateless optimisers.
    pub step: u64,
    /// Per-slot moment buffers (`slots[slot][buffer][element]`).
    pub slots: Vec<Vec<Vec<f32>>>,
}

/// A first-order gradient-descent optimiser.
pub trait Optimizer: Send {
    /// Called once before each batch of `update` calls (steps time forward
    /// for optimisers with bias correction).
    fn begin_step(&mut self);

    /// Apply one update to the parameter in `slot` given its gradient.
    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for simple decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Snapshot the moment buffers for checkpointing. Stateless optimisers
    /// return the default (empty) state.
    fn export_state(&self) -> OptimizerState {
        OptimizerState::default()
    }

    /// Restore a state exported by the same optimiser type. The default
    /// (stateless) implementation accepts only an empty state.
    fn import_state(&mut self, state: &OptimizerState) -> Result<()> {
        if state.step != 0 || state.slots.iter().any(|s| !s.is_empty()) {
            return Err(TensorError::InvalidArgument(
                "optimizer has no state to restore into".into(),
            ));
        }
        Ok(())
    }
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Vec<f32>>>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum `mu` (typically 0.9).
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Sgd {
            lr,
            momentum: mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(param.len(), grad.len());
        if self.momentum == 0.0 {
            for (p, &g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() <= slot {
            self.velocity.resize(slot + 1, None);
        }
        let v = self.velocity[slot].get_or_insert_with(|| vec![0.0; param.len()]);
        debug_assert_eq!(v.len(), param.len());
        for ((p, &g), vi) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(v.iter_mut())
        {
            *vi = self.momentum * *vi - self.lr * g;
            *p += *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            step: 0,
            slots: self
                .velocity
                .iter()
                .map(|slot| match slot {
                    Some(v) => vec![v.clone()],
                    None => Vec::new(),
                })
                .collect(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<()> {
        let mut velocity = Vec::with_capacity(state.slots.len());
        for (i, slot) in state.slots.iter().enumerate() {
            velocity.push(match slot.as_slice() {
                [] => None,
                [v] => Some(v.clone()),
                _ => {
                    return Err(TensorError::InvalidArgument(format!(
                        "sgd slot {i}: expected at most one velocity buffer, got {}",
                        slot.len()
                    )))
                }
            });
        }
        self.velocity = velocity;
        Ok(())
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) {
        debug_assert_eq!(param.len(), grad.len());
        if self.moments.len() <= slot {
            self.moments.resize(slot + 1, None);
        }
        let (m, v) = self.moments[slot]
            .get_or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        let t = self.t.max(1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (((p, &g), mi), vi) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            step: self.t,
            slots: self
                .moments
                .iter()
                .map(|slot| match slot {
                    Some((m, v)) => vec![m.clone(), v.clone()],
                    None => Vec::new(),
                })
                .collect(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<()> {
        let mut moments = Vec::with_capacity(state.slots.len());
        for (i, slot) in state.slots.iter().enumerate() {
            moments.push(match slot.as_slice() {
                [] => None,
                [m, v] if m.len() == v.len() => Some((m.clone(), v.clone())),
                [m, v] => {
                    return Err(TensorError::LengthMismatch {
                        expected: m.len(),
                        actual: v.len(),
                    })
                }
                _ => {
                    return Err(TensorError::InvalidArgument(format!(
                        "adam slot {i}: expected the [m, v] buffer pair, got {} buffers",
                        slot.len()
                    )))
                }
            });
        }
        self.t = state.step;
        self.moments = moments;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimise f(x) = x^2 starting at x = 5; gradient is 2x.
        let mut x = Tensor::from_slice(&[5.0]);
        for _ in 0..steps {
            opt.begin_step();
            let g = Tensor::from_slice(&[2.0 * x.as_slice()[0]]);
            opt.update(0, &mut x, &g);
        }
        x.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(quadratic_descent(&mut opt, 100).abs() < 1e-4);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(quadratic_descent(&mut opt, 200).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        assert!(quadratic_descent(&mut opt, 200).abs() < 1e-2);
    }

    #[test]
    fn sgd_single_step_is_lr_times_grad() {
        let mut opt = Sgd::new(0.5);
        let mut p = Tensor::from_slice(&[1.0, 2.0]);
        let g = Tensor::from_slice(&[1.0, -2.0]);
        opt.begin_step();
        opt.update(0, &mut p, &g);
        assert_eq!(p.as_slice(), &[0.5, 3.0]);
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, the first Adam step has magnitude ~lr
        // regardless of gradient scale.
        for &scale in &[1e-3f32, 1.0, 1e3] {
            let mut opt = Adam::new(0.1);
            let mut p = Tensor::from_slice(&[0.0]);
            let g = Tensor::from_slice(&[scale]);
            opt.begin_step();
            opt.update(0, &mut p, &g);
            assert!(
                (p.as_slice()[0].abs() - 0.1).abs() < 1e-3,
                "scale {scale} -> {p:?}"
            );
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut a = Tensor::from_slice(&[1.0]);
        let mut b = Tensor::from_slice(&[1.0, 1.0]);
        let ga = Tensor::from_slice(&[1.0]);
        let gb = Tensor::from_slice(&[0.0, 0.0]);
        opt.begin_step();
        opt.update(0, &mut a, &ga);
        opt.update(1, &mut b, &gb);
        assert!(a.as_slice()[0] < 1.0);
        assert_eq!(b.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    /// Run `steps` quadratic-descent steps on two optimisers that share a
    /// state hand-off halfway and assert they land on the same value as an
    /// uninterrupted run.
    fn state_transfer_matches_uninterrupted(mut make: impl FnMut() -> Box<dyn Optimizer>) {
        let total = 60;
        let mut reference = make();
        let x_ref = quadratic_descent(reference.as_mut(), total);

        let mut first = make();
        let mut x = Tensor::from_slice(&[5.0]);
        for _ in 0..total / 2 {
            first.begin_step();
            let g = Tensor::from_slice(&[2.0 * x.as_slice()[0]]);
            first.update(0, &mut x, &g);
        }
        let mut second = make();
        second.import_state(&first.export_state()).unwrap();
        for _ in 0..total / 2 {
            second.begin_step();
            let g = Tensor::from_slice(&[2.0 * x.as_slice()[0]]);
            second.update(0, &mut x, &g);
        }
        assert_eq!(x.as_slice()[0], x_ref, "state hand-off diverged");
    }

    #[test]
    fn sgd_momentum_state_round_trips_bit_identically() {
        state_transfer_matches_uninterrupted(|| Box::new(Sgd::with_momentum(0.05, 0.9)));
    }

    #[test]
    fn adam_state_round_trips_bit_identically() {
        state_transfer_matches_uninterrupted(|| Box::new(Adam::new(0.3)));
    }

    #[test]
    fn adam_import_rejects_malformed_slots() {
        let mut opt = Adam::new(0.1);
        let bad = OptimizerState {
            step: 3,
            slots: vec![vec![vec![0.0; 2]]],
        };
        assert!(opt.import_state(&bad).is_err());
        let ragged = OptimizerState {
            step: 3,
            slots: vec![vec![vec![0.0; 2], vec![0.0; 3]]],
        };
        assert!(opt.import_state(&ragged).is_err());
        let empty_ok = OptimizerState {
            step: 7,
            slots: vec![Vec::new()],
        };
        opt.import_state(&empty_ok).unwrap();
        assert_eq!(opt.export_state().step, 7);
    }

    #[test]
    fn sgd_import_rejects_extra_buffers() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let bad = OptimizerState {
            step: 0,
            slots: vec![vec![vec![0.0], vec![0.0]]],
        };
        assert!(opt.import_state(&bad).is_err());
    }
}
