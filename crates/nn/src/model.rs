//! The [`Sequential`] model container: forward/backward plumbing, batched
//! training with shuffling, prediction, and weight export/import.

use crate::layer::Layer;
use crate::loss::{Loss, LossTarget};
use crate::optim::Optimizer;
use crate::Result;
use prionn_telemetry::{Gauge, Histogram, Telemetry};
use prionn_tensor::{ops, Scratch, ScratchStats, Tensor, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-layer instruments, built once when telemetry is attached so the
/// forward/backward hot loops never touch the registry.
struct LayerInstruments {
    forward: Histogram,
    backward: Histogram,
    /// Absent for parameterless layers (ReLU, pooling, reshapes).
    param_norm: Option<Gauge>,
    grad_norm: Option<Gauge>,
}

/// Telemetry wiring for one model: the registry handle, the `model` label
/// its series carry, and the per-layer instrument cache.
struct ModelTelemetry {
    registry: Telemetry,
    model_label: String,
    per_layer: Vec<LayerInstruments>,
}

impl ModelTelemetry {
    fn build_layers(&mut self, layers: &[Box<dyn Layer>]) {
        self.per_layer = layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let layer = format!("{i}.{}", l.name());
                let labels = [
                    ("model", self.model_label.as_str()),
                    ("layer", layer.as_str()),
                ];
                LayerInstruments {
                    forward: self.registry.histogram_with(
                        "nn_layer_forward_seconds",
                        "Per-layer forward pass wall time",
                        &labels,
                    ),
                    backward: self.registry.histogram_with(
                        "nn_layer_backward_seconds",
                        "Per-layer backward pass wall time",
                        &labels,
                    ),
                    param_norm: (l.param_count() > 0).then(|| {
                        self.registry.gauge_with(
                            "nn_param_norm",
                            "L2 norm of the layer's parameters after the last step",
                            &labels,
                        )
                    }),
                    grad_norm: (l.param_count() > 0).then(|| {
                        self.registry.gauge_with(
                            "nn_grad_norm",
                            "L2 norm of the layer's gradients at the last step",
                            &labels,
                        )
                    }),
                }
            })
            .collect();
    }
}

/// A feed-forward stack of layers trained with backprop.
///
/// Weights persist across [`Sequential::fit_classes`] calls, which is what
/// implements
/// the paper's warm-started online retraining: PRIONN retrains the same model
/// instance every 100 job submissions on the 500 most recently completed
/// jobs, so "learned parameters pass to subsequent models".
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    telemetry: Option<ModelTelemetry>,
    // Shared workspace threaded through every layer pass; holds the buffer
    // pool and GEMM pack panels so steady-state training never allocates.
    scratch: Scratch,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Attach a telemetry registry: every layer gains
    /// `nn_layer_forward_seconds` / `nn_layer_backward_seconds` histograms
    /// and `nn_param_norm` / `nn_grad_norm` gauges, all labelled
    /// `{model=<model_label>, layer=<index>.<name>}`. Instruments are
    /// resolved once here; the hot loops only pay one `Instant::now()` pair
    /// per layer plus a striped atomic add. Call with the same registry to
    /// share one exposition endpoint across models; layers pushed after
    /// attachment are picked up automatically.
    pub fn set_telemetry(&mut self, registry: &Telemetry, model_label: &str) {
        let mut mt = ModelTelemetry {
            registry: registry.clone(),
            model_label: model_label.to_string(),
            per_layer: Vec::new(),
        };
        mt.build_layers(&self.layers);
        self.telemetry = Some(mt);
    }

    /// Detach telemetry (instrumentation becomes zero-cost again).
    pub fn clear_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Rebuild the per-layer instrument cache if layers changed since
    /// attachment; no-op in the common case.
    fn refresh_telemetry(&mut self) {
        if let Some(mt) = self.telemetry.as_mut() {
            if mt.per_layer.len() != self.layers.len() {
                mt.build_layers(&self.layers);
            }
        }
    }

    /// Copy the rows of `x` selected by `idx` into a pooled tensor
    /// (`x.gather_axis0` without the fresh allocation).
    fn gather_rows(scratch: &mut Scratch, x: &Tensor, idx: &[usize]) -> Result<Tensor> {
        let n = x.dims()[0];
        let row_len: usize = x.dims()[1..].iter().product();
        let mut buf = scratch.take(idx.len() * row_len);
        let xs = x.as_slice();
        for (r, &i) in idx.iter().enumerate() {
            if i >= n {
                return Err(TensorError::IndexOutOfBounds {
                    axis: 0,
                    index: i,
                    len: n,
                });
            }
            buf[r * row_len..(r + 1) * row_len]
                .copy_from_slice(&xs[i * row_len..(i + 1) * row_len]);
        }
        let mut dims = x.dims().to_vec();
        dims[0] = idx.len();
        Tensor::from_vec(dims, buf)
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// One-line-per-layer summary, e.g. for logging.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, l) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "{i:>2}: {:<10} params={}\n",
                l.name(),
                l.param_count()
            ));
        }
        s.push_str(&format!("total params: {}", self.param_count()));
        s
    }

    /// Run the full forward pass. Intermediate activations are recycled
    /// into the model's scratch pool as soon as the next layer has consumed
    /// them.
    ///
    /// When the calling thread carries an implicit trace context (the
    /// serving gateway sets one around each fused batch via
    /// `prionn_observe::trace::push_current`), every layer additionally
    /// records a `layer:<index>.<name>` child span; without a context the
    /// only cost is one thread-local check per layer.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        self.refresh_telemetry();
        let Sequential {
            layers,
            telemetry,
            scratch,
        } = self;
        let insts = telemetry.as_ref().map(|mt| &mt.per_layer);
        let tracing = prionn_observe::trace::active();
        let mut cur: Option<Tensor> = None;
        for (i, layer) in layers.iter_mut().enumerate() {
            let t = insts.map(|_| std::time::Instant::now());
            let span = if tracing {
                prionn_observe::trace::child_of_current(|| format!("layer:{i}.{}", layer.name()))
            } else {
                None
            };
            let next = layer.forward(cur.as_ref().unwrap_or(x), train, scratch)?;
            drop(span);
            if let (Some(insts), Some(t)) = (insts, t) {
                insts[i].forward.observe(t.elapsed().as_secs_f64());
            }
            if let Some(prev) = cur.replace(next) {
                scratch.recycle_tensor(prev);
            }
        }
        Ok(match cur {
            Some(out) => out,
            None => x.clone(),
        })
    }

    /// Run the full backward pass from an output gradient, recycling
    /// intermediate gradients like [`Sequential::forward`] does activations.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        self.refresh_telemetry();
        let Sequential {
            layers,
            telemetry,
            scratch,
        } = self;
        let insts = telemetry.as_ref().map(|mt| &mt.per_layer);
        let mut cur: Option<Tensor> = None;
        for (i, layer) in layers.iter_mut().enumerate().rev() {
            let t = insts.map(|_| std::time::Instant::now());
            let next = layer.backward(cur.as_ref().unwrap_or(grad), scratch)?;
            if let (Some(insts), Some(t)) = (insts, t) {
                insts[i].backward.observe(t.elapsed().as_secs_f64());
            }
            if let Some(prev) = cur.replace(next) {
                scratch.recycle_tensor(prev);
            }
        }
        Ok(match cur {
            Some(out) => out,
            None => grad.clone(),
        })
    }

    /// Switch eval-mode inference between f32 and int8 quantized weights
    /// on every layer that supports quantization (currently `Dense`; see
    /// [`Layer::quantize`]). Layers re-quantize themselves inside
    /// `load_state`, so a later [`Sequential::load_state_dict`] hot-swap
    /// keeps serving fresh int8 codes without a separate call here.
    pub fn set_quantized(&mut self, on: bool) {
        for layer in &mut self.layers {
            if on {
                layer.quantize();
            } else {
                layer.dequantize();
            }
        }
    }

    /// Number of layers currently holding quantized weights.
    pub fn quantized_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.is_quantized()).count()
    }

    /// Pool and GEMM counters for the model's scratch workspace. The
    /// `grows` counter staying flat across steps is the zero-allocation
    /// signal; `gemm` carries kernel GFLOP/s and pack-time share.
    pub fn scratch_stats(&self) -> ScratchStats {
        self.scratch.stats()
    }

    /// Reset the scratch counters (pooled buffers are kept), e.g. around a
    /// retrain window so gauges report per-window kernel efficiency.
    pub fn reset_scratch_stats(&mut self) {
        self.scratch.reset_stats();
    }

    /// Apply one optimiser step using the gradients from the last backward.
    ///
    /// With telemetry attached, each parameterised layer's L2 parameter and
    /// gradient norms are published as gauges (`nn_param_norm`,
    /// `nn_grad_norm`) — the norm reduction only runs when instrumented.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.refresh_telemetry();
        opt.begin_step();
        let mut slot = 0usize;
        let telemetry = self.telemetry.as_ref();
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let inst = telemetry.map(|mt| &mt.per_layer[li]);
            let mut p_sq = 0f64;
            let mut g_sq = 0f64;
            layer.visit_params(&mut |param, grad| {
                if inst.is_some() {
                    g_sq += grad
                        .as_slice()
                        .iter()
                        .map(|&v| v as f64 * v as f64)
                        .sum::<f64>();
                }
                opt.update(slot, param, grad);
                if inst.is_some() {
                    p_sq += param
                        .as_slice()
                        .iter()
                        .map(|&v| v as f64 * v as f64)
                        .sum::<f64>();
                }
                slot += 1;
            });
            if let Some(inst) = inst {
                if let (Some(p), Some(g)) = (&inst.param_norm, &inst.grad_norm) {
                    p.set(p_sq.sqrt());
                    g.set(g_sq.sqrt());
                }
            }
            // A quantized layer's packed codes are derived state: refresh
            // them whenever the optimiser moves the f32 weights, so the
            // eval path never serves stale codes after online retraining.
            if layer.is_quantized() {
                layer.quantize();
            }
        }
    }

    /// Forward + loss + backward + step on one minibatch; returns the loss.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        target: &LossTarget<'_>,
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
    ) -> Result<f32> {
        let out = self.forward(x, true)?;
        let (loss_val, grad) = loss.loss_and_grad(&out, target, &mut self.scratch)?;
        self.scratch.recycle_tensor(out);
        let dx = self.backward(&grad)?;
        self.scratch.recycle_tensor(grad);
        self.scratch.recycle_tensor(dx);
        self.step(opt);
        Ok(loss_val)
    }

    /// Train for `epochs` epochs over `(x, classes)` with shuffled
    /// minibatches; returns the mean loss of each epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_classes(
        &mut self,
        x: &Tensor,
        classes: &[usize],
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<f32>> {
        let n = x.dims()[0];
        if classes.len() != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: classes.len(),
            });
        }
        if batch_size == 0 {
            return Err(TensorError::InvalidArgument("zero batch size".into()));
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let bx = Self::gather_rows(&mut self.scratch, x, chunk)?;
                let mut by = self.scratch.take_idx(chunk.len());
                for (slot, &i) in by.iter_mut().zip(chunk) {
                    *slot = classes[i];
                }
                total += self.train_batch(&bx, &LossTarget::Classes(&by), loss, opt)?;
                self.scratch.recycle_tensor(bx);
                self.scratch.recycle_idx(by);
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        Ok(epoch_losses)
    }

    /// Train for `epochs` epochs over `(x, targets)` with shuffled
    /// minibatches for a value-target loss (e.g. MSE); `targets` must have
    /// the same leading dimension as `x`. Returns the mean loss per epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_values(
        &mut self,
        x: &Tensor,
        targets: &Tensor,
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<f32>> {
        let n = x.dims()[0];
        if targets.dims()[0] != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: targets.dims()[0],
            });
        }
        if batch_size == 0 {
            return Err(TensorError::InvalidArgument("zero batch size".into()));
        }
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let bx = Self::gather_rows(&mut self.scratch, x, chunk)?;
                let by = Self::gather_rows(&mut self.scratch, targets, chunk)?;
                total += self.train_batch(&bx, &LossTarget::Values(&by), loss, opt)?;
                self.scratch.recycle_tensor(bx);
                self.scratch.recycle_tensor(by);
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        Ok(epoch_losses)
    }

    /// Run inference (eval mode) in bounded batches; returns the stacked
    /// raw output (e.g. logits).
    pub fn predict(&mut self, x: &Tensor, batch_size: usize) -> Result<Tensor> {
        let n = x.dims()[0];
        let bs = batch_size.max(1);
        let row_len: usize = x.dims()[1..].iter().product();
        // Per-batch inputs/outputs come from the pool; only the stacked
        // result is a fresh allocation handed to the caller.
        let mut data: Vec<f32> = Vec::new();
        let mut out_dims: Option<Vec<usize>> = None;
        let mut rows = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + bs).min(n);
            let mut bbuf = self.scratch.take((end - start) * row_len);
            bbuf.copy_from_slice(&x.as_slice()[start * row_len..end * row_len]);
            let mut bdims = x.dims().to_vec();
            bdims[0] = end - start;
            let bx = Tensor::from_vec(bdims, bbuf)?;
            let out = self.forward(&bx, false)?;
            self.scratch.recycle_tensor(bx);
            if out_dims.is_none() {
                out_dims = Some(out.dims().to_vec());
                data.reserve(n.div_ceil(out.dims()[0].max(1)) * out.len());
            }
            rows += out.dims()[0];
            data.extend_from_slice(out.as_slice());
            self.scratch.recycle_tensor(out);
            start = end;
        }
        let mut dims = out_dims
            .ok_or_else(|| TensorError::InvalidArgument("predict on empty input".into()))?;
        dims[0] = rows;
        Tensor::from_vec(dims, data)
    }

    /// Predict the argmax class per row.
    pub fn predict_classes(&mut self, x: &Tensor, batch_size: usize) -> Result<Vec<usize>> {
        let logits = self.predict(x, batch_size)?;
        ops::argmax_rows(&logits)
    }

    /// Snapshot all learned parameters, layer by layer.
    pub fn state(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.state()).collect()
    }

    /// Restore parameters from a [`Sequential::state`] snapshot taken from a
    /// model with the identical architecture.
    pub fn load_state(&mut self, state: &[Tensor]) -> Result<()> {
        let mut offset = 0usize;
        for layer in &mut self.layers {
            offset += layer.load_state(&state[offset..])?;
        }
        if offset != state.len() {
            return Err(TensorError::LengthMismatch {
                expected: offset,
                actual: state.len(),
            });
        }
        Ok(())
    }

    /// Snapshot all learned parameters keyed by stable layer paths of the
    /// form `{layer_index}.{layer_name}.{state_key}` (e.g. `3.dense.w`).
    ///
    /// Unlike the positional [`Sequential::state`], the keys make persisted
    /// checkpoints self-describing: loading against a different architecture
    /// fails with the first mismatching path instead of silently assigning
    /// tensors to the wrong layers.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut dict = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let keys = layer.state_keys();
            let tensors = layer.state();
            debug_assert_eq!(
                keys.len(),
                tensors.len(),
                "{}: state_keys out of sync with state",
                layer.name()
            );
            for (key, t) in keys.iter().zip(tensors) {
                dict.push((format!("{i}.{}.{key}", layer.name()), t));
            }
        }
        dict
    }

    /// Restore parameters from a [`Sequential::state_dict`] snapshot.
    ///
    /// Every entry is validated against this model before any layer is
    /// touched: keys must match the model's own layer paths in order, and
    /// each tensor must have the shape of the parameter it replaces.
    pub fn load_state_dict(&mut self, dict: &[(String, Tensor)]) -> Result<()> {
        // Validate the whole dict first so a mismatch cannot leave the model
        // half-loaded.
        let mut cursor = 0usize;
        for (i, layer) in self.layers.iter().enumerate() {
            let keys = layer.state_keys();
            let current = layer.state();
            for (key, cur) in keys.iter().zip(&current) {
                let expected = format!("{i}.{}.{key}", layer.name());
                let Some((name, t)) = dict.get(cursor) else {
                    return Err(TensorError::InvalidArgument(format!(
                        "state dict ends before entry {expected}"
                    )));
                };
                if name != &expected {
                    return Err(TensorError::InvalidArgument(format!(
                        "state dict key mismatch: expected {expected}, found {name}"
                    )));
                }
                if t.shape() != cur.shape() {
                    return Err(TensorError::ShapeMismatch {
                        op: "load_state_dict",
                        lhs: cur.dims().to_vec(),
                        rhs: t.dims().to_vec(),
                    });
                }
                cursor += 1;
            }
        }
        if cursor != dict.len() {
            return Err(TensorError::LengthMismatch {
                expected: cursor,
                actual: dict.len(),
            });
        }
        let tensors: Vec<Tensor> = dict.iter().map(|(_, t)| t.clone()).collect();
        self.load_state(&tensors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, ReLU};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Sgd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn xor_model(seed: u64) -> Sequential {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(2, 16, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(16, 2, &mut rng))
    }

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec([4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut m = xor_model(3);
        let (x, y) = xor_data();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let losses = m
            .fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 300, 4, &mut rng)
            .unwrap();
        assert!(
            losses.last().unwrap() < &0.05,
            "final loss {:?}",
            losses.last()
        );
        assert_eq!(m.predict_classes(&x, 4).unwrap(), y);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut m = xor_model(4);
        let (x, y) = xor_data();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let losses = m
            .fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 100, 4, &mut rng)
            .unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn state_round_trip_reproduces_outputs() {
        let mut a = xor_model(5);
        let mut b = xor_model(99);
        let (x, _) = xor_data();
        assert_ne!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
        b.load_state(&a.state()).unwrap();
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn state_dict_keys_are_stable_layer_paths() {
        let m = xor_model(5);
        let keys: Vec<String> = m.state_dict().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["0.dense.w", "0.dense.b", "2.dense.w", "2.dense.b"]);
    }

    #[test]
    fn state_dict_round_trip_reproduces_outputs() {
        let mut a = xor_model(5);
        let mut b = xor_model(99);
        let (x, _) = xor_data();
        b.load_state_dict(&a.state_dict()).unwrap();
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn load_state_dict_rejects_wrong_key_or_shape() {
        let mut m = xor_model(1);
        let mut renamed = m.state_dict();
        renamed[1].0 = "0.dense.bias".into();
        assert!(m.load_state_dict(&renamed).is_err());

        let mut reshaped = m.state_dict();
        reshaped[0].1 = Tensor::zeros([3, 16]);
        assert!(m.load_state_dict(&reshaped).is_err());

        let mut truncated = m.state_dict();
        truncated.pop();
        assert!(m.load_state_dict(&truncated).is_err());
    }

    #[test]
    fn load_state_rejects_extra_tensors() {
        let mut m = xor_model(1);
        let mut state = m.state();
        state.push(Tensor::zeros([1]));
        assert!(m.load_state(&state).is_err());
    }

    #[test]
    fn quantized_predict_is_close_and_hot_swap_requantizes() {
        let mut m = xor_model(11);
        let (x, y) = xor_data();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        m.fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 300, 4, &mut rng)
            .unwrap();
        let f32_logits = m.predict(&x, 4).unwrap();
        m.set_quantized(true);
        assert_eq!(m.quantized_layers(), 2, "both dense layers quantize");
        let q_logits = m.predict(&x, 4).unwrap();
        let max_abs = f32_logits
            .as_slice()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        for (&a, &b) in f32_logits.as_slice().iter().zip(q_logits.as_slice()) {
            assert!((a - b).abs() <= max_abs * 0.05, "{a} vs {b}");
        }
        // The decisions survive quantization on this trained model.
        assert_eq!(m.predict_classes(&x, 4).unwrap(), y);

        // Hot-swap onto a different model's weights: the quantized path
        // must follow the new weights, not the stale codes.
        let donor = xor_model(99);
        m.load_state_dict(&donor.state_dict()).unwrap();
        assert_eq!(m.quantized_layers(), 2);
        let mut donor_q = xor_model(99);
        donor_q.set_quantized(true);
        let (xq, _) = xor_data();
        assert_eq!(m.predict(&xq, 4).unwrap(), donor_q.predict(&xq, 4).unwrap());
        m.set_quantized(false);
        assert_eq!(m.quantized_layers(), 0);
    }

    #[test]
    fn predict_batches_match_single_pass() {
        let mut m = xor_model(6);
        let (x, _) = xor_data();
        let one = m.predict(&x, 4).unwrap();
        let many = m.predict(&x, 1).unwrap();
        for (a, b) in one.as_slice().iter().zip(many.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fit_rejects_mismatched_targets() {
        let mut m = xor_model(1);
        let (x, _) = xor_data();
        let mut opt = Sgd::new(0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(m
            .fit_classes(&x, &[0, 1], &SoftmaxCrossEntropy, &mut opt, 1, 2, &mut rng)
            .is_err());
    }

    #[test]
    fn fit_values_learns_a_linear_map() {
        use crate::loss::MseLoss;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut m = Sequential::new().push(Dense::new(2, 1, &mut rng));
        // y = x0 - 2*x1 on a small grid.
        let xs: Vec<f32> = (0..40)
            .flat_map(|i| [(i % 8) as f32 / 8.0, (i / 8) as f32 / 5.0])
            .collect();
        let ys: Vec<f32> = xs.chunks(2).map(|p| p[0] - 2.0 * p[1]).collect();
        let x = Tensor::from_vec([40, 2], xs).unwrap();
        let y = Tensor::from_vec([40, 1], ys).unwrap();
        let mut opt = Sgd::new(0.3);
        let mut shuffle_rng = ChaCha8Rng::seed_from_u64(0);
        let losses = m
            .fit_values(&x, &y, &MseLoss, &mut opt, 200, 8, &mut shuffle_rng)
            .unwrap();
        assert!(
            losses.last().unwrap() < &1e-3,
            "final loss {:?}",
            losses.last()
        );
    }

    #[test]
    fn forward_attaches_per_layer_spans_under_a_trace_context() {
        use prionn_observe::{FlightConfig, FlightRecorder, Tracer};
        let rec = FlightRecorder::new(FlightConfig::default());
        let tracer = Tracer::new(&rec);
        let mut m = xor_model(3);
        let (x, _) = xor_data();

        // No context: nothing recorded.
        m.forward(&x, false).unwrap();
        assert!(rec.snapshot().is_empty());

        let root = tracer.root("fused_forward");
        {
            let _ctx = prionn_observe::trace::push_current(&tracer, root.ctx());
            m.forward(&x, false).unwrap();
        }
        let spans = rec.snapshot();
        let layers: Vec<&str> = spans
            .iter()
            .filter(|s| s.trace_id == root.ctx().trace_id)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(layers, ["layer:0.dense", "layer:1.relu", "layer:2.dense"]);
        assert!(spans.iter().all(|s| s.parent_id == root.ctx().span_id));
    }

    #[test]
    fn fit_values_rejects_mismatched_rows() {
        use crate::loss::MseLoss;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut m = Sequential::new().push(Dense::new(2, 1, &mut rng));
        let x = Tensor::zeros([4, 2]);
        let y = Tensor::zeros([3, 1]);
        let mut opt = Sgd::new(0.1);
        let mut srng = ChaCha8Rng::seed_from_u64(0);
        assert!(m
            .fit_values(&x, &y, &MseLoss, &mut opt, 1, 2, &mut srng)
            .is_err());
    }

    #[test]
    fn telemetry_records_per_layer_timings_and_norms() {
        use prionn_telemetry::Telemetry;
        let t = Telemetry::new();
        let mut m = xor_model(3);
        m.set_telemetry(&t, "runtime");
        let (x, y) = xor_data();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        m.fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 2, 4, &mut rng)
            .unwrap();
        let text = t.prometheus();
        assert!(
            text.contains("nn_layer_forward_seconds_bucket{layer=\"0.dense\",model=\"runtime\""),
            "{text}"
        );
        assert!(text.contains("nn_layer_backward_seconds_bucket{layer=\"2.dense\""));
        // ReLU has no parameters: only the dense layers publish norms.
        assert!(text.contains("nn_param_norm{layer=\"0.dense\""));
        assert!(!text.contains("nn_param_norm{layer=\"1.relu\""));
        let h = t.histogram_with(
            "nn_layer_forward_seconds",
            "",
            &[("model", "runtime"), ("layer", "0.dense")],
        );
        // 2 epochs x 1 batch of 4 = 2 forward passes through layer 0.
        assert_eq!(h.count(), 2);
        // Instrumented and uninstrumented training agree bit-for-bit.
        let mut plain = xor_model(3);
        let mut opt2 = Sgd::with_momentum(0.5, 0.9);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        plain
            .fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt2, 2, 4, &mut rng2)
            .unwrap();
        assert_eq!(
            m.forward(&x, false).unwrap(),
            plain.forward(&x, false).unwrap()
        );
    }

    #[test]
    fn warm_start_continues_from_previous_fit() {
        // Train briefly, snapshot loss; continue training; loss keeps falling
        // rather than restarting at the cold-start level.
        let mut m = xor_model(7);
        let (x, y) = xor_data();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = m
            .fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 50, 4, &mut rng)
            .unwrap();
        let second = m
            .fit_classes(&x, &y, &SoftmaxCrossEntropy, &mut opt, 50, 4, &mut rng)
            .unwrap();
        assert!(second.first().unwrap() <= first.first().unwrap());
    }
}
