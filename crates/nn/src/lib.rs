//! A from-scratch CPU deep-learning library for PRIONN.
//!
//! The paper (ICPP 2018) trains three model families on image-like job-script
//! tensors: a fully connected network (NN), a 1-D CNN, and the winning 2-D
//! CNN with four convolutional and four fully connected layers feeding a
//! 960-way classifier head (runtime minutes 0–960 on the Cab cluster).
//!
//! This crate provides everything those models need and nothing more:
//!
//! * [`layer`] — the [`Layer`] trait plus `Dense`, `Conv2d`
//!   (with a 1-D convenience constructor), `MaxPool2d`, `ReLU`, `Dropout`,
//!   `Flatten`, and `Reshape`,
//! * [`loss`] — softmax cross-entropy (classifier head) and MSE (regression
//!   ablation),
//! * [`optim`] — SGD with momentum and Adam, with state keyed by parameter
//!   slot so warm-started retraining (the paper's online protocol) keeps
//!   optimiser state coherent,
//! * [`model`] — a [`Sequential`] container with batched
//!   training, prediction, and weight export/import,
//! * [`arch`] — the paper's three architectures behind one [`arch::ArchConfig`].
//!
//! Parallelism: convolutions and dense matmuls fan out across rayon workers
//! per batch row; all randomness is caller-seeded (`ChaCha8Rng`).

#![warn(missing_docs)]

pub mod arch;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;

pub use arch::{build_cnn1d, build_cnn2d, build_nn, ArchConfig, ModelKind};
pub use layer::Layer;
pub use loss::{Loss, LossTarget, MseLoss, SoftmaxCrossEntropy};
pub use model::Sequential;
pub use optim::{Adam, Optimizer, OptimizerState, Sgd};

/// Errors bubbled up from the tensor substrate.
pub type Result<T> = prionn_tensor::Result<T>;
