//! Loss functions: softmax cross-entropy (classifier head) and MSE
//! (regression ablation).

use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};

/// Target values for a loss computation.
pub enum LossTarget<'a> {
    /// One class index per batch row (classification).
    Classes(&'a [usize]),
    /// A target tensor with the same shape as the model output (regression).
    Values(&'a Tensor),
}

/// A scalar training loss with an analytic gradient w.r.t. the model output.
pub trait Loss: Send + Sync {
    /// Compute the mean loss over the batch and the gradient tensor
    /// `dL/d(output)` (already divided by the batch size). The gradient is
    /// built from a pooled `scratch` buffer so the training loop can recycle
    /// it after backprop.
    fn loss_and_grad(
        &self,
        output: &Tensor,
        target: &LossTarget<'_>,
        scratch: &mut Scratch,
    ) -> Result<(f32, Tensor)>;
}

/// Softmax + cross-entropy, fused for numerical stability.
///
/// PRIONN's heads are classifiers (e.g. 960 runtime-minute bins), so this is
/// the production loss. The fused gradient is the familiar
/// `(softmax(z) − onehot(y)) / batch`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

/// Row-wise softmax over `cols`-wide rows, in place.
fn softmax_in_place(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        // Max-shift for stability before exponentiating.
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl SoftmaxCrossEntropy {
    /// Row-wise softmax of a `[batch, classes]` tensor.
    pub fn softmax(logits: &Tensor) -> Result<Tensor> {
        if logits.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax",
                expected: 2,
                actual: logits.rank(),
            });
        }
        let mut out = logits.clone();
        softmax_in_place(out.as_mut_slice(), logits.dims()[1]);
        Ok(out)
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn loss_and_grad(
        &self,
        output: &Tensor,
        target: &LossTarget<'_>,
        scratch: &mut Scratch,
    ) -> Result<(f32, Tensor)> {
        let LossTarget::Classes(classes) = target else {
            return Err(TensorError::InvalidArgument(
                "SoftmaxCrossEntropy requires class targets".into(),
            ));
        };
        let (batch, n_classes) = (output.dims()[0], output.dims()[1]);
        if classes.len() != batch {
            return Err(TensorError::LengthMismatch {
                expected: batch,
                actual: classes.len(),
            });
        }
        // Pooled copy of the logits; softmax + fused gradient in place.
        let mut buf = scratch.take(output.len());
        buf.copy_from_slice(output.as_slice());
        let mut probs = Tensor::from_vec(output.shape().clone(), buf)?;
        softmax_in_place(probs.as_mut_slice(), n_classes);
        let mut loss = 0.0f32;
        let inv_batch = 1.0 / batch.max(1) as f32;
        for (row, &cls) in (0..batch).zip(classes.iter()) {
            if cls >= n_classes {
                return Err(TensorError::IndexOutOfBounds {
                    axis: 1,
                    index: cls,
                    len: n_classes,
                });
            }
            let r = probs.row_mut(row)?;
            loss -= (r[cls].max(1e-12)).ln();
            // Fused gradient: probs - onehot, scaled by 1/batch.
            r[cls] -= 1.0;
            for v in r.iter_mut() {
                *v *= inv_batch;
            }
        }
        Ok((loss * inv_batch, probs))
    }
}

/// Mean squared error over all output elements.
#[derive(Debug, Default, Clone, Copy)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn loss_and_grad(
        &self,
        output: &Tensor,
        target: &LossTarget<'_>,
        scratch: &mut Scratch,
    ) -> Result<(f32, Tensor)> {
        let LossTarget::Values(t) = target else {
            return Err(TensorError::InvalidArgument(
                "MseLoss requires value targets".into(),
            ));
        };
        if t.shape() != output.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "mse",
                lhs: output.dims().to_vec(),
                rhs: t.dims().to_vec(),
            });
        }
        let n = output.len().max(1) as f32;
        let mut gbuf = scratch.take(output.len());
        let mut loss = 0.0f32;
        for ((g, &ov), &tv) in gbuf.iter_mut().zip(output.as_slice()).zip(t.as_slice()) {
            let diff = ov - tv;
            loss += diff * diff;
            *g = 2.0 * diff / n;
        }
        let grad = Tensor::from_vec(output.shape().clone(), gbuf)?;
        Ok((loss / n, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec([2, 3], vec![1., 2., 3., -5., 0., 5.]).unwrap();
        let p = SoftmaxCrossEntropy::softmax(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([1, 3], vec![101., 102., 103.]).unwrap();
        let pa = SoftmaxCrossEntropy::softmax(&a).unwrap();
        let pb = SoftmaxCrossEntropy::softmax(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec([1, 3], vec![100., 0., 0.]).unwrap();
        let (loss, _) = SoftmaxCrossEntropy
            .loss_and_grad(&logits, &LossTarget::Classes(&[0]), &mut Scratch::new())
            .unwrap();
        assert!(loss < 1e-5);
    }

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros([1, 4]);
        let (loss, _) = SoftmaxCrossEntropy
            .loss_and_grad(&logits, &LossTarget::Classes(&[2]), &mut Scratch::new())
            .unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.3]).unwrap();
        let targets = [2usize, 0usize];
        let (_, grad) = SoftmaxCrossEntropy
            .loss_and_grad(&logits, &LossTarget::Classes(&targets), &mut Scratch::new())
            .unwrap();
        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 0usize), (0, 2), (1, 1)] {
            let mut up = logits.clone();
            up.set(&[i, j], logits.get(&[i, j]).unwrap() + eps).unwrap();
            let mut dn = logits.clone();
            dn.set(&[i, j], logits.get(&[i, j]).unwrap() - eps).unwrap();
            let (lu, _) = SoftmaxCrossEntropy
                .loss_and_grad(&up, &LossTarget::Classes(&targets), &mut Scratch::new())
                .unwrap();
            let (ld, _) = SoftmaxCrossEntropy
                .loss_and_grad(&dn, &LossTarget::Classes(&targets), &mut Scratch::new())
                .unwrap();
            let numeric = (lu - ld) / (2.0 * eps);
            let analytic = grad.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "({i},{j}): {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn ce_rejects_bad_class_index() {
        let logits = Tensor::zeros([1, 3]);
        assert!(SoftmaxCrossEntropy
            .loss_and_grad(&logits, &LossTarget::Classes(&[3]), &mut Scratch::new())
            .is_err());
    }

    #[test]
    fn ce_rejects_value_targets() {
        let logits = Tensor::zeros([1, 3]);
        let vals = Tensor::zeros([1, 3]);
        assert!(SoftmaxCrossEntropy
            .loss_and_grad(&logits, &LossTarget::Values(&vals), &mut Scratch::new())
            .is_err());
    }

    #[test]
    fn mse_zero_for_exact_match() {
        let out = Tensor::from_slice(&[1.0, 2.0]).reshape([1, 2]).unwrap();
        let (loss, grad) = MseLoss
            .loss_and_grad(&out, &LossTarget::Values(&out.clone()), &mut Scratch::new())
            .unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradient_direction() {
        let out = Tensor::from_vec([1, 2], vec![2.0, 0.0]).unwrap();
        let tgt = Tensor::from_vec([1, 2], vec![0.0, 1.0]).unwrap();
        let (loss, grad) = MseLoss
            .loss_and_grad(&out, &LossTarget::Values(&tgt), &mut Scratch::new())
            .unwrap();
        assert!((loss - (4.0 + 1.0) / 2.0).abs() < 1e-6);
        assert!(grad.get(&[0, 0]).unwrap() > 0.0); // overpredicted -> positive grad
        assert!(grad.get(&[0, 1]).unwrap() < 0.0); // underpredicted -> negative
    }

    #[test]
    fn mse_rejects_shape_mismatch() {
        let out = Tensor::zeros([1, 2]);
        let tgt = Tensor::zeros([2, 1]);
        assert!(MseLoss
            .loss_and_grad(&out, &LossTarget::Values(&tgt), &mut Scratch::new())
            .is_err());
    }
}
