//! Activation layers.

use super::Layer;
use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};

/// Rectified linear unit, applied elementwise to any rank.
#[derive(Default)]
pub struct ReLU {
    // 1.0 where the input was positive, 0.0 elsewhere.
    mask: Option<Vec<f32>>,
}

impl ReLU {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, _train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        // Forward-only loops (predict) never reach backward, so recycle any
        // stale mask before replacing it.
        if let Some(old) = self.mask.take() {
            scratch.recycle(old);
        }
        let mut mask = scratch.take_zeroed(x.len());
        let mut out = scratch.take(x.len());
        out.copy_from_slice(x.as_slice());
        for (v, m) in out.iter_mut().zip(&mut mask) {
            if *v > 0.0 {
                *m = 1.0;
            } else {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        Tensor::from_vec(x.shape().clone(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("relu backward without forward".into()))?;
        if mask.len() != grad_out.len() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: grad_out.len(),
            });
        }
        let mut g = scratch.take(grad_out.len());
        for ((gv, &go), m) in g.iter_mut().zip(grad_out.as_slice()).zip(&mask) {
            *gv = go * m;
        }
        scratch.recycle(mask);
        Tensor::from_vec(grad_out.shape().clone(), g)
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives() {
        let mut r = ReLU::new();
        let mut s = Scratch::new();
        let y = r
            .forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]), true, &mut s)
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gradient_masked_by_activation() {
        let mut r = ReLU::new();
        let mut s = Scratch::new();
        r.forward(&Tensor::from_slice(&[-1.0, 3.0]), true, &mut s)
            .unwrap();
        let g = r
            .backward(&Tensor::from_slice(&[10.0, 10.0]), &mut s)
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 10.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: f'(0) = 0.
        let mut r = ReLU::new();
        let mut s = Scratch::new();
        r.forward(&Tensor::from_slice(&[0.0]), true, &mut s)
            .unwrap();
        let g = r.backward(&Tensor::from_slice(&[1.0]), &mut s).unwrap();
        assert_eq!(g.as_slice(), &[0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = ReLU::new();
        let mut s = Scratch::new();
        assert!(r.backward(&Tensor::from_slice(&[1.0]), &mut s).is_err());
    }
}
