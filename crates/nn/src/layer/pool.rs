//! Max pooling.

use super::Layer;
use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};

/// Max pooling over `[batch, C, H, W]` with a `ph × pw` window and matching
/// stride (the standard non-overlapping configuration).
///
/// Spatial dims that do not divide evenly are truncated (floor), matching
/// common framework defaults.
pub struct MaxPool2d {
    ph: usize,
    pw: usize,
    // (input shape, linear index of the max tap for each output element)
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// A square `p × p` pool.
    pub fn new(p: usize) -> Result<Self> {
        Self::with_window(p, p)
    }

    /// A `ph × pw` pool. A height of 1 gives the 1-D pooling used by the
    /// paper's 1D-CNN.
    pub fn with_window(ph: usize, pw: usize) -> Result<Self> {
        if ph == 0 || pw == 0 {
            return Err(TensorError::InvalidArgument(
                "zero-sized pool window".into(),
            ));
        }
        Ok(MaxPool2d {
            ph,
            pw,
            cache: None,
        })
    }

    /// Output spatial dims for a given input.
    pub fn out_hw(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        (in_h / self.ph, in_w / self.pw)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        // Recycle a stale argmax cache left by a forward-only pass (predict).
        if let Some((_, old)) = self.cache.take() {
            scratch.recycle_idx(old);
        }
        if x.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "maxpool",
                expected: 4,
                actual: x.rank(),
            });
        }
        let [b, c, h, w] = [x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]];
        let (oh, ow) = self.out_hw(h, w);
        if oh == 0 || ow == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "pool {}x{} larger than input {h}x{w}",
                self.ph, self.pw
            )));
        }
        let xs = x.as_slice();
        let mut out = scratch.take(b * c * oh * ow);
        let mut argmax = scratch.take_idx(out.len());
        for bi in 0..b {
            for ci in 0..c {
                let plane = (bi * c + ci) * h * w;
                let out_plane = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..self.ph {
                            let iy = oy * self.ph + dy;
                            for dx in 0..self.pw {
                                let ix = ox * self.pw + dx;
                                let idx = plane + iy * w + ix;
                                if xs[idx] > best {
                                    best = xs[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[out_plane + oy * ow + ox] = best;
                        argmax[out_plane + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        self.cache = Some((x.dims().to_vec(), argmax));
        Tensor::from_vec([b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let (in_dims, argmax) = self.cache.take().ok_or_else(|| {
            TensorError::InvalidArgument("maxpool backward without forward".into())
        })?;
        if grad_out.len() != argmax.len() {
            return Err(TensorError::LengthMismatch {
                expected: argmax.len(),
                actual: grad_out.len(),
            });
        }
        let mut dx = scratch.take_zeroed(in_dims.iter().product());
        for (&idx, &g) in argmax.iter().zip(grad_out.as_slice()) {
            dx[idx] += g;
        }
        scratch.recycle_idx(argmax);
        Tensor::from_vec(in_dims, dx)
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_known_maxima() {
        let mut p = MaxPool2d::new(2).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                9., 1., 0., 0., //
                1., 1., 0., 7.,
            ],
        )
        .unwrap();
        let y = p.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4., 5., 9., 7.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new(2).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 3., 2., 0.]).unwrap();
        p.forward(&x, true, &mut s).unwrap();
        let dy = Tensor::from_vec([1, 1, 1, 1], vec![5.0]).unwrap();
        let dx = p.backward(&dy, &mut s).unwrap();
        assert_eq!(dx.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn truncates_ragged_edges() {
        let mut p = MaxPool2d::new(2).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::zeros([1, 1, 5, 5]);
        let y = p.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn one_d_window() {
        let mut p = MaxPool2d::with_window(1, 2).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::from_vec([1, 1, 1, 4], vec![1., 9., 2., 3.]).unwrap();
        let y = p.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.as_slice(), &[9., 3.]);
    }

    #[test]
    fn rejects_oversized_window() {
        let mut p = MaxPool2d::new(4).unwrap();
        let mut s = Scratch::new();
        assert!(p
            .forward(&Tensor::zeros([1, 1, 2, 2]), true, &mut s)
            .is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut p = MaxPool2d::new(2).unwrap();
        let mut s = Scratch::new();
        assert!(p.backward(&Tensor::zeros([1, 1, 1, 1]), &mut s).is_err());
    }
}
