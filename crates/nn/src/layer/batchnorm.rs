//! Batch normalisation (Ioffe & Szegedy, 2015).

use super::Layer;
use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};

/// Per-channel batch normalisation with learnable scale/shift.
///
/// Accepts rank-2 `[batch, features]` (channel = feature) or rank-4
/// `[batch, C, H, W]` (channel = C) inputs. Train mode normalises with the
/// batch statistics and updates running estimates; eval mode uses the
/// running estimates, so single-sample inference is well-defined.
pub struct BatchNorm {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Forward cache: (input dims, x_hat, inv_std per channel)
    cache: Option<(Vec<usize>, Vec<f32>, Vec<f32>)>,
}

impl BatchNorm {
    /// A batch-norm layer over `channels` channels.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(TensorError::InvalidArgument(
                "batchnorm over zero channels".into(),
            ));
        }
        Ok(BatchNorm {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::full([channels], 1.0),
            beta: Tensor::zeros([channels]),
            grad_gamma: Tensor::zeros([channels]),
            grad_beta: Tensor::zeros([channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        })
    }

    /// (channel index, per-channel group size) for the supported ranks.
    fn layout(&self, dims: &[usize]) -> Result<(usize, usize)> {
        match dims.len() {
            2 if dims[1] == self.channels => Ok((dims[0], 1)),
            4 if dims[1] == self.channels => Ok((dims[0], dims[2] * dims[3])),
            _ => Err(TensorError::ShapeMismatch {
                op: "batchnorm",
                lhs: vec![0, self.channels],
                rhs: dims.to_vec(),
            }),
        }
    }

    /// Iterate the flat offsets of channel `c` in a tensor with the given
    /// layout, applying `f` to each.
    #[inline]
    fn for_channel(
        dims_batch: usize,
        channels: usize,
        spatial: usize,
        c: usize,
        mut f: impl FnMut(usize),
    ) {
        for b in 0..dims_batch {
            let base = (b * channels + c) * spatial;
            for s in 0..spatial {
                f(base + s);
            }
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        // Recycle a stale cache left by a forward-only pass (predict).
        if let Some((_, xh, inv)) = self.cache.take() {
            scratch.recycle(xh);
            scratch.recycle(inv);
        }
        let (batch, spatial) = self.layout(x.dims())?;
        let n = (batch * spatial) as f32;
        let xs = x.as_slice();
        let mut out = scratch.take(xs.len());
        let mut x_hat = scratch.take(xs.len());
        let mut inv_stds = scratch.take(self.channels);

        // The channel index addresses four parallel arrays at once; an
        // iterator chain over just one of them would obscure that.
        #[allow(clippy::needless_range_loop)]
        for c in 0..self.channels {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                Self::for_channel(batch, self.channels, spatial, c, |i| sum += xs[i]);
                let mean = sum / n;
                let mut var = 0.0f32;
                Self::for_channel(batch, self.channels, spatial, c, |i| {
                    let d = xs[i] - mean;
                    var += d * d;
                });
                let var = var / n;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[c] = inv_std;
            let (g, b_) = (self.gamma.as_slice()[c], self.beta.as_slice()[c]);
            Self::for_channel(batch, self.channels, spatial, c, |i| {
                let xh = (xs[i] - mean) * inv_std;
                x_hat[i] = xh;
                out[i] = g * xh + b_;
            });
        }
        if train {
            self.cache = Some((x.dims().to_vec(), x_hat, inv_stds));
        } else {
            scratch.recycle(x_hat);
            scratch.recycle(inv_stds);
        }
        Tensor::from_vec(x.dims().to_vec(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let (dims, x_hat, inv_stds) = self.cache.take().ok_or_else(|| {
            TensorError::InvalidArgument("batchnorm backward without train-mode forward".into())
        })?;
        if grad_out.dims() != dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm_backward",
                lhs: dims,
                rhs: grad_out.dims().to_vec(),
            });
        }
        let (batch, spatial) = self.layout(&dims)?;
        let n = (batch * spatial) as f32;
        let gys = grad_out.as_slice();
        let mut dx = scratch.take_zeroed(gys.len());

        #[allow(clippy::needless_range_loop)]
        for c in 0..self.channels {
            let mut sum_gy = 0.0f32;
            let mut sum_gy_xhat = 0.0f32;
            Self::for_channel(batch, self.channels, spatial, c, |i| {
                sum_gy += gys[i];
                sum_gy_xhat += gys[i] * x_hat[i];
            });
            self.grad_beta.as_mut_slice()[c] = sum_gy;
            self.grad_gamma.as_mut_slice()[c] = sum_gy_xhat;
            let g = self.gamma.as_slice()[c];
            let scale = g * inv_stds[c];
            let mean_gy = sum_gy / n;
            let mean_gy_xhat = sum_gy_xhat / n;
            Self::for_channel(batch, self.channels, spatial, c, |i| {
                dx[i] = scale * (gys[i] - mean_gy - x_hat[i] * mean_gy_xhat);
            });
        }
        scratch.recycle(x_hat);
        scratch.recycle(inv_stds);
        Tensor::from_vec(dims, dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.gamma, &self.grad_gamma);
        f(&mut self.beta, &self.grad_beta);
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }

    fn state_keys(&self) -> &'static [&'static str] {
        &["gamma", "beta", "running_mean", "running_var"]
    }

    fn state(&self) -> Vec<Tensor> {
        vec![
            self.gamma.clone(),
            self.beta.clone(),
            Tensor::from_slice(&self.running_mean),
            Tensor::from_slice(&self.running_var),
        ]
    }

    fn load_state(&mut self, state: &[Tensor]) -> Result<usize> {
        let [g, b, rm, rv, ..] = state else {
            return Err(TensorError::InvalidArgument(
                "batchnorm state needs 4 tensors".into(),
            ));
        };
        if g.len() != self.channels
            || b.len() != self.channels
            || rm.len() != self.channels
            || rv.len() != self.channels
        {
            return Err(TensorError::LengthMismatch {
                expected: self.channels,
                actual: g.len(),
            });
        }
        self.gamma = g.clone();
        self.beta = b.clone();
        self.running_mean = rm.as_slice().to_vec();
        self.running_var = rv.as_slice().to_vec();
        Ok(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(41)
    }

    #[test]
    fn train_forward_normalises_each_channel() {
        let mut bn = BatchNorm::new(3).unwrap();
        let mut s = Scratch::new();
        let x = prionn_tensor::init::uniform([16, 3, 4, 4], -5.0, 9.0, &mut rng());
        let y = bn.forward(&x, true, &mut s).unwrap();
        let ys = y.as_slice();
        for c in 0..3 {
            let mut vals = Vec::new();
            for b in 0..16 {
                for s in 0..16 {
                    vals.push(ys[(b * 3 + c) * 16 + s]);
                }
            }
            let n = vals.len() as f32;
            let mean: f32 = vals.iter().sum::<f32>() / n;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm::new(2).unwrap();
        let mut s = Scratch::new();
        // Feed several constant-distribution batches to settle running stats.
        let x = prionn_tensor::init::normal([64, 2], 3.0, 2.0, &mut rng());
        for _ in 0..50 {
            bn.forward(&x, true, &mut s).unwrap();
        }
        // A single eval sample at the distribution mean should map near beta.
        let probe = Tensor::from_vec([1, 2], vec![3.0, 3.0]).unwrap();
        let y = bn.forward(&probe, false, &mut s).unwrap();
        for &v in y.as_slice() {
            assert!(v.abs() < 0.3, "eval output {v} should be near 0");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut bn = BatchNorm::new(2).unwrap();
        let x = prionn_tensor::init::uniform([5, 2], -1.0, 1.0, &mut rng());
        // Loss = weighted sum of outputs (fixed weights make it nontrivial).
        let weights: Vec<f32> = (0..10).map(|i| ((i * 7 % 5) as f32 - 2.0) / 2.0).collect();
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            bn.forward(x, true, &mut Scratch::new())
                .unwrap()
                .as_slice()
                .iter()
                .zip(&weights)
                .map(|(&y, &w)| y * w)
                .sum()
        };
        loss(&mut bn, &x);
        let grad_out = Tensor::from_vec([5, 2], weights.clone()).unwrap();
        let dx = bn.backward(&grad_out, &mut Scratch::new()).unwrap();
        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 0usize), (2, 1), (4, 0)] {
            let mut xp = x.clone();
            let orig = x.get(&[i, j]).unwrap();
            xp.set(&[i, j], orig + eps).unwrap();
            let up = loss(&mut bn, &xp);
            xp.set(&[i, j], orig - eps).unwrap();
            let dn = loss(&mut bn, &xp);
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = dx.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 2e-2 + 0.05 * analytic.abs(),
                "({i},{j}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn state_round_trip_includes_running_stats() {
        let mut a = BatchNorm::new(2).unwrap();
        let mut s = Scratch::new();
        let x = prionn_tensor::init::normal([32, 2], 5.0, 1.0, &mut rng());
        for _ in 0..20 {
            a.forward(&x, true, &mut s).unwrap();
        }
        let mut b = BatchNorm::new(2).unwrap();
        assert_eq!(b.load_state(&a.state()).unwrap(), 4);
        let probe = prionn_tensor::init::normal([4, 2], 5.0, 1.0, &mut rng());
        assert_eq!(
            a.forward(&probe, false, &mut s).unwrap(),
            b.forward(&probe, false, &mut s).unwrap()
        );
    }

    #[test]
    fn rejects_wrong_channel_count_and_eval_backward() {
        let mut bn = BatchNorm::new(3).unwrap();
        let mut s = Scratch::new();
        assert!(bn.forward(&Tensor::zeros([2, 4]), true, &mut s).is_err());
        assert!(bn
            .forward(&Tensor::zeros([2, 4, 2, 2]), true, &mut s)
            .is_err());
        let mut bn2 = BatchNorm::new(2).unwrap();
        bn2.forward(&Tensor::zeros([2, 2]), false, &mut s).unwrap();
        assert!(
            bn2.backward(&Tensor::zeros([2, 2]), &mut s).is_err(),
            "eval forward caches nothing"
        );
    }
}
