//! Fully connected layer.

use super::Layer;
use crate::Result;
use prionn_tensor::ops;
use prionn_tensor::{Scratch, Tensor, TensorError};
use rand::Rng;

/// A fully connected layer: `y = x · W + b`.
///
/// `W` is `[in_features, out_features]`, inputs are `[batch, in_features]`.
pub struct Dense {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
    /// Packed int8 weights for eval-mode forwards; rebuilt from `w` on
    /// every [`Layer::load_state`] while present (quantize-at-hot-swap).
    qw: Option<ops::QuantizedWeights>,
}

impl Dense {
    /// He-normal initialised dense layer (the workspace default ahead of
    /// ReLU activations).
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let w = prionn_tensor::init::he_normal([in_features, out_features], in_features, rng);
        Dense {
            w,
            b: Tensor::zeros([out_features]),
            grad_w: Tensor::zeros([in_features, out_features]),
            grad_b: Tensor::zeros([out_features]),
            cached_input: None,
            in_features,
            out_features,
            qw: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight matrix (tests / inspection).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        if x.rank() != 2 || x.dims()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                op: "dense_forward",
                lhs: vec![0, self.in_features],
                rhs: x.dims().to_vec(),
            });
        }
        // Recycle a stale cached input left by a forward-only pass (predict).
        if let Some(old) = self.cached_input.take() {
            scratch.recycle_tensor(old);
        }
        // Quantized eval path: integer GEMM over packed int8 weights. No
        // input cache — backprop through the int8 product is undefined, so
        // a subsequent backward (which only train passes issue) must not
        // silently use it.
        if !train {
            if let Some(qw) = &self.qw {
                let rows = x.dims()[0];
                let mut qa = scratch.take_u8(x.len());
                let aq = ops::quantize_activations_into(x.as_slice(), &mut qa);
                let mut out = scratch.take(rows * self.out_features);
                ops::qgemm(&qa, aq, rows, qw, Some(self.b.as_slice()), false, &mut out);
                scratch.recycle_u8(qa);
                return Tensor::from_vec([rows, self.out_features], out);
            }
        }
        // Fused GEMM + bias epilogue: one pass over the output.
        let y = ops::matmul_bias_with(scratch, x, &self.w, &self.b)?;
        // Cache the input in a pooled buffer rather than a fresh clone.
        let mut cached = scratch.take(x.len());
        cached.copy_from_slice(x.as_slice());
        self.cached_input = Some(Tensor::from_vec(x.shape().clone(), cached)?);
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let x = self
            .cached_input
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("dense backward without forward".into()))?;
        // Write xᵀ·dy straight into the persistent gradient tensor.
        ops::matmul_at_b_into(scratch, &x, grad_out, &mut self.grad_w)?;
        // In-place column sums for the bias gradient.
        let gb = self.grad_b.as_mut_slice();
        gb.fill(0.0);
        for row in grad_out.as_slice().chunks_exact(self.out_features) {
            for (g, &v) in gb.iter_mut().zip(row) {
                *g += v;
            }
        }
        let dx = ops::matmul_a_bt_with(scratch, grad_out, &self.w)?;
        scratch.recycle_tensor(x);
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.w, &self.grad_w);
        f(&mut self.b, &self.grad_b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn state_keys(&self) -> &'static [&'static str] {
        &["w", "b"]
    }

    fn state(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }

    fn load_state(&mut self, state: &[Tensor]) -> Result<usize> {
        let [w, b, ..] = state else {
            return Err(TensorError::InvalidArgument(
                "dense state needs 2 tensors".into(),
            ));
        };
        if w.shape() != self.w.shape() || b.shape() != self.b.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dense_load_state",
                lhs: self.w.dims().to_vec(),
                rhs: w.dims().to_vec(),
            });
        }
        self.w = w.clone();
        self.b = b.clone();
        // Hot-swap invariant: new weights must never serve through stale
        // int8 codes.
        if self.qw.is_some() {
            self.quantize();
        }
        Ok(2)
    }

    fn quantize(&mut self) {
        self.qw = Some(ops::QuantizedWeights::quantize(
            self.w.as_slice(),
            self.in_features,
            self.out_features,
        ));
    }

    fn dequantize(&mut self) {
        self.qw = None;
    }

    fn is_quantized(&self) -> bool {
        self.qw.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, &mut rng());
        // Zero the weights so output == bias.
        d.w.fill_zero();
        d.b = Tensor::from_slice(&[1.0, -2.0]);
        let x = Tensor::zeros([4, 3]);
        let mut s = Scratch::new();
        let y = d.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(y.row(2).unwrap(), &[1.0, -2.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut d = Dense::new(3, 2, &mut rng());
        let mut s = Scratch::new();
        assert!(d.forward(&Tensor::zeros([4, 5]), true, &mut s).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dense::new(3, 2, &mut rng());
        let mut s = Scratch::new();
        assert!(d.backward(&Tensor::zeros([4, 2]), &mut s).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = Dense::new(4, 3, &mut rng());
        let x = prionn_tensor::init::uniform([2, 4], -1.0, 1.0, &mut rng());
        let mut s = Scratch::new();
        // Scalar objective: sum of outputs. dL/dy = ones.
        let ones = Tensor::full([2, 3], 1.0);
        d.forward(&x, true, &mut s).unwrap();
        let dx = d.backward(&ones, &mut s).unwrap();

        let eps = 1e-3f32;
        // Check dW via central differences on a few entries.
        for &(i, j) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let orig = d.w.get(&[i, j]).unwrap();
            d.w.set(&[i, j], orig + eps).unwrap();
            let up = ops::sum(&d.forward(&x, true, &mut s).unwrap());
            d.w.set(&[i, j], orig - eps).unwrap();
            let dn = ops::sum(&d.forward(&x, true, &mut s).unwrap());
            d.w.set(&[i, j], orig).unwrap();
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = d.grad_w.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{i},{j}] {numeric} vs {analytic}"
            );
        }
        // Check dX on one entry.
        let orig = x.get(&[1, 2]).unwrap();
        let mut xp = x.clone();
        xp.set(&[1, 2], orig + eps).unwrap();
        let up = ops::sum(&d.forward(&xp, true, &mut s).unwrap());
        xp.set(&[1, 2], orig - eps).unwrap();
        let dn = ops::sum(&d.forward(&xp, true, &mut s).unwrap());
        let numeric = (up - dn) / (2.0 * eps);
        assert!((numeric - dx.get(&[1, 2]).unwrap()).abs() < 1e-2);
    }

    #[test]
    fn state_round_trips() {
        let a = Dense::new(3, 2, &mut rng());
        let mut b = Dense::new(3, 2, &mut ChaCha8Rng::seed_from_u64(99));
        assert_ne!(a.w, b.w);
        let consumed = b.load_state(&a.state()).unwrap();
        assert_eq!(consumed, 2);
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn load_state_rejects_wrong_shape() {
        let mut d = Dense::new(3, 2, &mut rng());
        let bad = vec![Tensor::zeros([2, 2]), Tensor::zeros([2])];
        assert!(d.load_state(&bad).is_err());
    }

    #[test]
    fn param_count_is_w_plus_b() {
        let d = Dense::new(5, 4, &mut rng());
        assert_eq!(d.param_count(), 5 * 4 + 4);
    }

    #[test]
    fn quantized_eval_forward_tracks_f32_closely() {
        let mut d = Dense::new(32, 24, &mut rng());
        let x = prionn_tensor::init::uniform([8, 32], -1.0, 1.0, &mut rng());
        let mut s = Scratch::new();
        let f32_out = d.forward(&x, false, &mut s).unwrap();
        d.quantize();
        assert!(d.is_quantized());
        let q_out = d.forward(&x, false, &mut s).unwrap();
        assert_eq!(q_out.dims(), f32_out.dims());
        let max_abs = f32_out
            .as_slice()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        for (&a, &b) in f32_out.as_slice().iter().zip(q_out.as_slice()) {
            assert!(
                (a - b).abs() <= max_abs * 0.02 + 1e-3,
                "f32 {a} vs int8 {b}"
            );
        }
        // Training passes ignore the quantized path entirely.
        let train_out = d.forward(&x, true, &mut s).unwrap();
        assert_eq!(train_out, f32_out);
        d.dequantize();
        assert_eq!(d.forward(&x, false, &mut s).unwrap(), f32_out);
    }

    #[test]
    fn load_state_requantizes_when_quantized() {
        let donor = Dense::new(6, 5, &mut ChaCha8Rng::seed_from_u64(42));
        let mut d = Dense::new(6, 5, &mut rng());
        d.quantize();
        let x = prionn_tensor::init::uniform([3, 6], -1.0, 1.0, &mut rng());
        let mut s = Scratch::new();
        let before = d.forward(&x, false, &mut s).unwrap();
        d.load_state(&donor.state()).unwrap();
        assert!(d.is_quantized(), "quantization survives a hot-swap");
        let after = d.forward(&x, false, &mut s).unwrap();
        assert_ne!(before, after, "stale int8 codes served after swap");
        // And the swapped codes reflect the donor's weights.
        let mut fresh = Dense::new(6, 5, &mut ChaCha8Rng::seed_from_u64(42));
        fresh.quantize();
        assert_eq!(after, fresh.forward(&x, false, &mut s).unwrap());
    }
}
