//! 2-D convolution layer (im2col + matmul), with a 1-D convenience
//! constructor used by the paper's 1D-CNN architecture.

use super::Layer;
use crate::Result;
use prionn_tensor::ops::gemm::{self, Epilogue, GemmWorkspace, Layout};
use prionn_tensor::ops::{self, Conv2dGeom};
use prionn_tensor::{Scratch, Tensor, TensorError};
use rand::Rng;
use rayon::prelude::*;

/// Worker-group count for sample-level parallelism.
fn sample_groups(batch: usize) -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(batch)
        .max(1)
}

/// A 2-D convolution over `[batch, in_c, H, W]` inputs.
///
/// Weights are stored pre-flattened as `[out_c, in_c·kh·kw]` so forward is a
/// single matmul against the im2col matrix of each sample. Batch rows are
/// processed in parallel with rayon.
pub struct Conv2d {
    geom: Conv2dGeom,
    out_channels: usize,
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    // Flat pooled im2col cache from the last forward pass:
    // `batch` back-to-back `[col_rows, n_pos]` matrices.
    cached_cols: Option<(Vec<f32>, usize)>,
}

impl Conv2d {
    /// A square-kernel conv layer with He-normal init.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::with_kernel(
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel,
            kernel,
            stride,
            padding,
            rng,
        )
    }

    /// A conv layer with an explicit `kh × kw` kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn with_kernel(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::from_geom(
            Conv2dGeom::new(in_channels, in_h, in_w, kernel_h, kernel_w, stride, padding)?,
            out_channels,
            rng,
        )
    }

    /// A conv layer from a pre-validated geometry.
    pub fn from_geom(geom: Conv2dGeom, out_channels: usize, rng: &mut impl Rng) -> Result<Self> {
        if out_channels == 0 {
            return Err(TensorError::InvalidArgument(
                "conv with zero output channels".into(),
            ));
        }
        let fan_in = geom.col_rows();
        let w = prionn_tensor::init::he_normal([out_channels, fan_in], fan_in, rng);
        Ok(Conv2d {
            geom,
            out_channels,
            w,
            b: Tensor::zeros([out_channels]),
            grad_w: Tensor::zeros([out_channels, fan_in]),
            grad_b: Tensor::zeros([out_channels]),
            cached_cols: None,
        })
    }

    /// 1-D convolution over `[batch, in_c, 1, L]` inputs: a `1 × kernel`
    /// 2-D convolution with padding only along the sequence axis, which is
    /// exactly how the paper's 1D-CNN consumes the flattened script sequence.
    pub fn new_1d(
        in_channels: usize,
        out_channels: usize,
        len: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::from_geom(
            Conv2dGeom::with_padding(in_channels, 1, len, 1, kernel, stride, 0, padding)?,
            out_channels,
            rng,
        )
    }

    /// Convolution geometry (exposed for architecture builders).
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output spatial dims `(oh, ow)`.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.geom.out_h(), self.geom.out_w())
    }

    fn check_input(&self, x: &Tensor) -> Result<usize> {
        let g = &self.geom;
        if x.rank() != 4
            || x.dims()[1] != g.in_channels
            || x.dims()[2] != g.in_h
            || x.dims()[3] != g.in_w
        {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_forward",
                lhs: vec![0, g.in_channels, g.in_h, g.in_w],
                rhs: x.dims().to_vec(),
            });
        }
        Ok(x.dims()[0])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        let batch = self.check_input(x)?;
        let g = self.geom;
        let sample_len = g.in_channels * g.in_h * g.in_w;
        let (oh, ow) = (g.out_h(), g.out_w());
        let n_pos = oh * ow;
        let col_rows = g.col_rows();
        let cols_sample = col_rows * n_pos;
        let out_sample = self.out_channels * n_pos;
        let xs = x.as_slice();
        let w = self.w.as_slice();
        let bias = self.b.as_slice();
        let out_c = self.out_channels;

        // Recycle last step's cols cache, then draw both the im2col matrix
        // (all samples, back to back) and the output from the pool.
        if let Some((old, _)) = self.cached_cols.take() {
            scratch.recycle(old);
        }
        let mut cols_flat = scratch.take(batch * cols_sample);
        let mut out_flat = scratch.take(batch * out_sample);

        // Per-sample: cols = im2col(x_i); y_i = W · cols + b (fused BiasRow
        // epilogue). Samples are sharded across worker groups, each with its
        // own GEMM pack workspace and disjoint cols/out chunks.
        let groups = sample_groups(batch);
        let (_, workers) = scratch.gemm_workspaces(groups);
        let per = batch.div_ceil(groups);
        let mut items: Vec<(usize, &mut [f32], &mut [f32], &mut GemmWorkspace)> =
            Vec::with_capacity(groups);
        {
            let mut cols_rest: &mut [f32] = &mut cols_flat;
            let mut out_rest: &mut [f32] = &mut out_flat;
            let mut s0 = 0usize;
            for ws in workers.iter_mut() {
                if s0 == batch {
                    break;
                }
                let take = per.min(batch - s0);
                let (cchunk, ctail) = cols_rest.split_at_mut(take * cols_sample);
                let (ochunk, otail) = out_rest.split_at_mut(take * out_sample);
                items.push((s0, cchunk, ochunk, ws));
                s0 += take;
                cols_rest = ctail;
                out_rest = otail;
            }
        }
        let results: Vec<Result<()>> = items
            .into_par_iter()
            .map(|(s0, cchunk, ochunk, ws)| {
                for (si, (cols_i, out_i)) in cchunk
                    .chunks_exact_mut(cols_sample)
                    .zip(ochunk.chunks_exact_mut(out_sample))
                    .enumerate()
                {
                    let i = s0 + si;
                    ops::im2col_into(&xs[i * sample_len..(i + 1) * sample_len], &g, cols_i)?;
                    gemm::gemm(
                        ws,
                        out_c,
                        n_pos,
                        col_rows,
                        w,
                        Layout::RowMajor,
                        cols_i,
                        Layout::RowMajor,
                        out_i,
                        false,
                        Epilogue::BiasRow(bias),
                    );
                }
                Ok(())
            })
            .collect();
        for r in results {
            r?;
        }
        self.cached_cols = Some((cols_flat, batch));
        Tensor::from_vec([batch, self.out_channels, oh, ow], out_flat)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let g = self.geom;
        let (oh, ow) = (g.out_h(), g.out_w());
        let n_pos = oh * ow;
        let Some((cols_flat, batch)) = self.cached_cols.take() else {
            return Err(TensorError::InvalidArgument(
                "conv2d backward without forward".into(),
            ));
        };
        if grad_out.dims() != [batch, self.out_channels, oh, ow] {
            self.cached_cols = Some((cols_flat, batch));
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_backward",
                lhs: vec![batch, self.out_channels, oh, ow],
                rhs: grad_out.dims().to_vec(),
            });
        }
        let go = grad_out.as_slice();
        let w = self.w.as_slice();
        let out_c = self.out_channels;
        let col_rows = g.col_rows();
        let cols_sample = col_rows * n_pos;
        let out_sample = out_c * n_pos;
        let sample_len = g.in_channels * g.in_h * g.in_w;

        // Pooled per-group partial accumulators + per-group dcols workspace,
        // and the flat dX output. All recycled (or returned) below.
        let groups = sample_groups(batch);
        let mut dw_parts: Vec<Vec<f32>> = (0..groups)
            .map(|_| scratch.take_zeroed(out_c * col_rows))
            .collect();
        let mut db_parts: Vec<Vec<f32>> = (0..groups).map(|_| scratch.take_zeroed(out_c)).collect();
        let mut dcols_parts: Vec<Vec<f32>> =
            (0..groups).map(|_| scratch.take(cols_sample)).collect();
        let mut dx_flat = scratch.take(batch * sample_len);

        let (_, workers) = scratch.gemm_workspaces(groups);
        let per = batch.div_ceil(groups);
        type Item<'a> = (
            usize,
            &'a [f32],
            &'a mut [f32],
            &'a mut [f32],
            &'a mut [f32],
            &'a mut [f32],
            &'a mut GemmWorkspace,
        );
        let mut items: Vec<Item<'_>> = Vec::with_capacity(groups);
        {
            let mut cols_rest: &[f32] = &cols_flat;
            let mut dx_rest: &mut [f32] = &mut dx_flat;
            let mut s0 = 0usize;
            for (((ws, dw), db), dc) in workers
                .iter_mut()
                .zip(dw_parts.iter_mut())
                .zip(db_parts.iter_mut())
                .zip(dcols_parts.iter_mut())
            {
                if s0 == batch {
                    break;
                }
                let take = per.min(batch - s0);
                let (cchunk, ctail) = cols_rest.split_at(take * cols_sample);
                let (xchunk, xtail) = dx_rest.split_at_mut(take * sample_len);
                items.push((s0, cchunk, xchunk, dw, db, dc, ws));
                s0 += take;
                cols_rest = ctail;
                dx_rest = xtail;
            }
        }
        let results: Vec<Result<()>> = items
            .into_par_iter()
            .map(|(s0, cchunk, xchunk, dw, db, dcols, ws)| {
                for (si, (cols_i, dx_i)) in cchunk
                    .chunks_exact(cols_sample)
                    .zip(xchunk.chunks_exact_mut(sample_len))
                    .enumerate()
                {
                    let i = s0 + si;
                    let dy = &go[i * out_sample..(i + 1) * out_sample];
                    // dW += dY · colsᵀ (accumulated across the group's
                    // samples); db += row sums of dY; dX_i = col2im(Wᵀ · dY).
                    gemm::gemm(
                        ws,
                        out_c,
                        col_rows,
                        n_pos,
                        dy,
                        Layout::RowMajor,
                        cols_i,
                        Layout::Transposed,
                        dw,
                        true,
                        Epilogue::None,
                    );
                    for (oc, b) in db.iter_mut().enumerate() {
                        for &v in &dy[oc * n_pos..(oc + 1) * n_pos] {
                            *b += v;
                        }
                    }
                    gemm::gemm(
                        ws,
                        col_rows,
                        n_pos,
                        out_c,
                        w,
                        Layout::Transposed,
                        dy,
                        Layout::RowMajor,
                        dcols,
                        false,
                        Epilogue::None,
                    );
                    ops::col2im_into(dcols, &g, dx_i)?;
                }
                Ok(())
            })
            .collect();
        for r in results {
            r?;
        }

        // Reduce group partials into the persistent gradient tensors.
        self.grad_w.fill_zero();
        self.grad_b.fill_zero();
        let gw = self.grad_w.as_mut_slice();
        for dw in &dw_parts {
            for (acc, &v) in gw.iter_mut().zip(dw) {
                *acc += v;
            }
        }
        let gb = self.grad_b.as_mut_slice();
        for db in &db_parts {
            for (acc, &v) in gb.iter_mut().zip(db) {
                *acc += v;
            }
        }
        for buf in dw_parts
            .into_iter()
            .chain(db_parts)
            .chain(dcols_parts)
            .chain(std::iter::once(cols_flat))
        {
            scratch.recycle(buf);
        }
        Tensor::from_vec([batch, g.in_channels, g.in_h, g.in_w], dx_flat)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.w, &self.grad_w);
        f(&mut self.b, &self.grad_b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn state_keys(&self) -> &'static [&'static str] {
        &["w", "b"]
    }

    fn state(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }

    fn load_state(&mut self, state: &[Tensor]) -> Result<usize> {
        let [w, b, ..] = state else {
            return Err(TensorError::InvalidArgument(
                "conv2d state needs 2 tensors".into(),
            ));
        };
        if w.shape() != self.w.shape() || b.shape() != self.b.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_load_state",
                lhs: self.w.dims().to_vec(),
                rhs: w.dims().to_vec(),
            });
        }
        self.w = w.clone();
        self.b = b.clone();
        Ok(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn forward_shapes() {
        let mut c = Conv2d::new(2, 4, 8, 8, 3, 1, 1, &mut rng()).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::zeros([3, 2, 8, 8]);
        let y = c.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[3, 4, 8, 8]);
    }

    #[test]
    fn one_by_one_identity_kernel_passes_input_through() {
        let mut c = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng()).unwrap();
        let mut s = Scratch::new();
        c.w = Tensor::from_vec([1, 1], vec![1.0]).unwrap();
        c.b.fill_zero();
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel with padding 1: each output = sum of 3x3
        // neighbourhood. Centre of a 3x3 all-ones image = 9.
        let mut c = Conv2d::new(1, 1, 3, 3, 3, 1, 1, &mut rng()).unwrap();
        let mut s = Scratch::new();
        c.w = Tensor::full([1, 9], 1.0);
        c.b.fill_zero();
        let x = Tensor::full([1, 1, 3, 3], 1.0);
        let y = c.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 9.0);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 4.0); // corner sees 2x2
    }

    #[test]
    fn forward_rejects_wrong_input() {
        let mut c = Conv2d::new(2, 4, 8, 8, 3, 1, 1, &mut rng()).unwrap();
        let mut s = Scratch::new();
        assert!(c
            .forward(&Tensor::zeros([3, 2, 8, 7]), true, &mut s)
            .is_err());
        assert!(c.forward(&Tensor::zeros([3, 2, 8]), true, &mut s).is_err());
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut c = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        let mut s = Scratch::new();
        let x = prionn_tensor::init::uniform([2, 1, 4, 4], -1.0, 1.0, &mut rng());
        let ones = Tensor::full([2, 2, 4, 4], 1.0);
        c.forward(&x, true, &mut s).unwrap();
        let dx = c.backward(&ones, &mut s).unwrap();
        let eps = 1e-2f32;
        for &(i, j) in &[(0usize, 0usize), (1, 4), (1, 8)] {
            let orig = c.w.get(&[i, j]).unwrap();
            c.w.set(&[i, j], orig + eps).unwrap();
            let up = ops::sum(&c.forward(&x, true, &mut s).unwrap());
            c.w.set(&[i, j], orig - eps).unwrap();
            let dn = ops::sum(&c.forward(&x, true, &mut s).unwrap());
            c.w.set(&[i, j], orig).unwrap();
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = c.grad_w.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "dW[{i},{j}] numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient check on one element.
        let idx = [1usize, 0, 2, 3];
        let orig = x.get(&idx).unwrap();
        let mut xp = x.clone();
        xp.set(&idx, orig + eps).unwrap();
        let up = ops::sum(&c.forward(&xp, true, &mut s).unwrap());
        xp.set(&idx, orig - eps).unwrap();
        let dn = ops::sum(&c.forward(&xp, true, &mut s).unwrap());
        let numeric = (up - dn) / (2.0 * eps);
        let analytic = dx.get(&idx).unwrap();
        assert!((numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0));
    }

    #[test]
    fn conv1d_constructor_builds_1xl_geometry() {
        let c = Conv2d::new_1d(4, 8, 100, 5, 2, 2, &mut rng()).unwrap();
        assert_eq!(c.geom().in_h, 1);
        assert_eq!(c.out_hw().0, 1);
        assert_eq!(c.out_hw().1, 50);
    }

    #[test]
    fn state_round_trip() {
        let mut a = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        let mut b = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let mut s = Scratch::new();
        b.load_state(&a.state()).unwrap();
        let x = prionn_tensor::init::uniform([1, 1, 4, 4], -1.0, 1.0, &mut rng());
        assert_eq!(
            a.forward(&x, false, &mut s).unwrap(),
            b.forward(&x, false, &mut s).unwrap()
        );
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut c = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        let mut s = Scratch::new();
        assert!(c.backward(&Tensor::zeros([1, 2, 4, 4]), &mut s).is_err());
    }
}
