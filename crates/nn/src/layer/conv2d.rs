//! 2-D convolution layer (im2col + matmul), with a 1-D convenience
//! constructor used by the paper's 1D-CNN architecture.

use super::Layer;
use crate::Result;
use prionn_tensor::ops::{self, Conv2dGeom};
use prionn_tensor::{Tensor, TensorError};
use rand::Rng;
use rayon::prelude::*;

/// A 2-D convolution over `[batch, in_c, H, W]` inputs.
///
/// Weights are stored pre-flattened as `[out_c, in_c·kh·kw]` so forward is a
/// single matmul against the im2col matrix of each sample. Batch rows are
/// processed in parallel with rayon.
pub struct Conv2d {
    geom: Conv2dGeom,
    out_channels: usize,
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    // Cached per-sample im2col matrices from the last forward pass.
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// A square-kernel conv layer with He-normal init.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::with_kernel(
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel,
            kernel,
            stride,
            padding,
            rng,
        )
    }

    /// A conv layer with an explicit `kh × kw` kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn with_kernel(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::from_geom(
            Conv2dGeom::new(in_channels, in_h, in_w, kernel_h, kernel_w, stride, padding)?,
            out_channels,
            rng,
        )
    }

    /// A conv layer from a pre-validated geometry.
    pub fn from_geom(geom: Conv2dGeom, out_channels: usize, rng: &mut impl Rng) -> Result<Self> {
        if out_channels == 0 {
            return Err(TensorError::InvalidArgument(
                "conv with zero output channels".into(),
            ));
        }
        let fan_in = geom.col_rows();
        let w = prionn_tensor::init::he_normal([out_channels, fan_in], fan_in, rng);
        Ok(Conv2d {
            geom,
            out_channels,
            w,
            b: Tensor::zeros([out_channels]),
            grad_w: Tensor::zeros([out_channels, fan_in]),
            grad_b: Tensor::zeros([out_channels]),
            cached_cols: Vec::new(),
        })
    }

    /// 1-D convolution over `[batch, in_c, 1, L]` inputs: a `1 × kernel`
    /// 2-D convolution with padding only along the sequence axis, which is
    /// exactly how the paper's 1D-CNN consumes the flattened script sequence.
    pub fn new_1d(
        in_channels: usize,
        out_channels: usize,
        len: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        Self::from_geom(
            Conv2dGeom::with_padding(in_channels, 1, len, 1, kernel, stride, 0, padding)?,
            out_channels,
            rng,
        )
    }

    /// Convolution geometry (exposed for architecture builders).
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output spatial dims `(oh, ow)`.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.geom.out_h(), self.geom.out_w())
    }

    fn check_input(&self, x: &Tensor) -> Result<usize> {
        let g = &self.geom;
        if x.rank() != 4
            || x.dims()[1] != g.in_channels
            || x.dims()[2] != g.in_h
            || x.dims()[3] != g.in_w
        {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_forward",
                lhs: vec![0, g.in_channels, g.in_h, g.in_w],
                rhs: x.dims().to_vec(),
            });
        }
        Ok(x.dims()[0])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let batch = self.check_input(x)?;
        let g = self.geom;
        let sample_len = g.in_channels * g.in_h * g.in_w;
        let (oh, ow) = (g.out_h(), g.out_w());
        let n_pos = oh * ow;
        let xs = x.as_slice();
        let w = &self.w;
        let bias = self.b.as_slice();

        // Per-sample: cols = im2col(x_i); y_i = W · cols + b.
        let per_sample: Vec<Result<(Tensor, Vec<f32>)>> = (0..batch)
            .into_par_iter()
            .map(|i| {
                let cols = ops::im2col(&xs[i * sample_len..(i + 1) * sample_len], &g)?;
                let mut y = ops::matmul(w, &cols)?;
                for (oc, &bv) in bias.iter().enumerate() {
                    for v in &mut y.as_mut_slice()[oc * n_pos..(oc + 1) * n_pos] {
                        *v += bv;
                    }
                }
                Ok((cols, y.into_vec()))
            })
            .collect();

        let mut cols_cache = Vec::with_capacity(batch);
        let mut out = Vec::with_capacity(batch * self.out_channels * n_pos);
        for r in per_sample {
            let (cols, y) = r?;
            cols_cache.push(cols);
            out.extend_from_slice(&y);
        }
        self.cached_cols = cols_cache;
        Tensor::from_vec([batch, self.out_channels, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.geom;
        let (oh, ow) = (g.out_h(), g.out_w());
        let n_pos = oh * ow;
        let batch = self.cached_cols.len();
        if batch == 0 {
            return Err(TensorError::InvalidArgument(
                "conv2d backward without forward".into(),
            ));
        }
        if grad_out.dims() != [batch, self.out_channels, oh, ow] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_backward",
                lhs: vec![batch, self.out_channels, oh, ow],
                rhs: grad_out.dims().to_vec(),
            });
        }
        let go = grad_out.as_slice();
        let w = &self.w;
        let cols_cache = std::mem::take(&mut self.cached_cols);
        let out_c = self.out_channels;

        // Per-sample gradient pieces, reduced afterwards.
        type GradPiece = (Tensor, Vec<f32>, Vec<f32>); // (dW_i, db_i, dX_i)
        let pieces: Vec<Result<GradPiece>> = cols_cache
            .par_iter()
            .enumerate()
            .map(|(i, cols)| {
                let dy = Tensor::from_vec(
                    [out_c, n_pos],
                    go[i * out_c * n_pos..(i + 1) * out_c * n_pos].to_vec(),
                )?;
                // dW_i = dY · colsᵀ ; db_i = row sums of dY ;
                // dX_i = col2im(Wᵀ · dY).
                let dw = ops::matmul_a_bt(&dy, cols)?;
                let db = ops::row_sums(&dy)?;
                let dcols = ops::matmul_at_b(w, &dy)?;
                let dx = ops::col2im(&dcols, &g)?;
                Ok((dw, db, dx))
            })
            .collect();

        self.grad_w.fill_zero();
        self.grad_b.fill_zero();
        let sample_len = g.in_channels * g.in_h * g.in_w;
        let mut dx_all = Vec::with_capacity(batch * sample_len);
        for piece in pieces {
            let (dw, db, dx) = piece?;
            ops::add_assign(&mut self.grad_w, &dw)?;
            for (b, d) in self.grad_b.as_mut_slice().iter_mut().zip(&db) {
                *b += d;
            }
            dx_all.extend_from_slice(&dx);
        }
        Tensor::from_vec([batch, g.in_channels, g.in_h, g.in_w], dx_all)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.w, &self.grad_w);
        f(&mut self.b, &self.grad_b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn state_keys(&self) -> &'static [&'static str] {
        &["w", "b"]
    }

    fn state(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }

    fn load_state(&mut self, state: &[Tensor]) -> Result<usize> {
        let [w, b, ..] = state else {
            return Err(TensorError::InvalidArgument(
                "conv2d state needs 2 tensors".into(),
            ));
        };
        if w.shape() != self.w.shape() || b.shape() != self.b.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_load_state",
                lhs: self.w.dims().to_vec(),
                rhs: w.dims().to_vec(),
            });
        }
        self.w = w.clone();
        self.b = b.clone();
        Ok(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn forward_shapes() {
        let mut c = Conv2d::new(2, 4, 8, 8, 3, 1, 1, &mut rng()).unwrap();
        let x = Tensor::zeros([3, 2, 8, 8]);
        let y = c.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[3, 4, 8, 8]);
    }

    #[test]
    fn one_by_one_identity_kernel_passes_input_through() {
        let mut c = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng()).unwrap();
        c.w = Tensor::from_vec([1, 1], vec![1.0]).unwrap();
        c.b.fill_zero();
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel with padding 1: each output = sum of 3x3
        // neighbourhood. Centre of a 3x3 all-ones image = 9.
        let mut c = Conv2d::new(1, 1, 3, 3, 3, 1, 1, &mut rng()).unwrap();
        c.w = Tensor::full([1, 9], 1.0);
        c.b.fill_zero();
        let x = Tensor::full([1, 1, 3, 3], 1.0);
        let y = c.forward(&x, true).unwrap();
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 9.0);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 4.0); // corner sees 2x2
    }

    #[test]
    fn forward_rejects_wrong_input() {
        let mut c = Conv2d::new(2, 4, 8, 8, 3, 1, 1, &mut rng()).unwrap();
        assert!(c.forward(&Tensor::zeros([3, 2, 8, 7]), true).is_err());
        assert!(c.forward(&Tensor::zeros([3, 2, 8]), true).is_err());
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut c = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        let x = prionn_tensor::init::uniform([2, 1, 4, 4], -1.0, 1.0, &mut rng());
        let ones = Tensor::full([2, 2, 4, 4], 1.0);
        c.forward(&x, true).unwrap();
        let dx = c.backward(&ones).unwrap();
        let eps = 1e-2f32;
        for &(i, j) in &[(0usize, 0usize), (1, 4), (1, 8)] {
            let orig = c.w.get(&[i, j]).unwrap();
            c.w.set(&[i, j], orig + eps).unwrap();
            let up = ops::sum(&c.forward(&x, true).unwrap());
            c.w.set(&[i, j], orig - eps).unwrap();
            let dn = ops::sum(&c.forward(&x, true).unwrap());
            c.w.set(&[i, j], orig).unwrap();
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = c.grad_w.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "dW[{i},{j}] numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradient check on one element.
        let idx = [1usize, 0, 2, 3];
        let orig = x.get(&idx).unwrap();
        let mut xp = x.clone();
        xp.set(&idx, orig + eps).unwrap();
        let up = ops::sum(&c.forward(&xp, true).unwrap());
        xp.set(&idx, orig - eps).unwrap();
        let dn = ops::sum(&c.forward(&xp, true).unwrap());
        let numeric = (up - dn) / (2.0 * eps);
        let analytic = dx.get(&idx).unwrap();
        assert!((numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0));
    }

    #[test]
    fn conv1d_constructor_builds_1xl_geometry() {
        let c = Conv2d::new_1d(4, 8, 100, 5, 2, 2, &mut rng()).unwrap();
        assert_eq!(c.geom().in_h, 1);
        assert_eq!(c.out_hw().0, 1);
        assert_eq!(c.out_hw().1, 50);
    }

    #[test]
    fn state_round_trip() {
        let mut a = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        let mut b = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        b.load_state(&a.state()).unwrap();
        let x = prionn_tensor::init::uniform([1, 1, 4, 4], -1.0, 1.0, &mut rng());
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut c = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng()).unwrap();
        assert!(c.backward(&Tensor::zeros([1, 2, 4, 4])).is_err());
    }
}
