//! Layers: the [`Layer`] trait and all concrete layer types.

mod activation;
mod batchnorm;
mod conv2d;
mod dense;
mod dropout;
mod pool;
mod shape_ops;

pub use activation::ReLU;
pub use batchnorm::BatchNorm;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::MaxPool2d;
pub use shape_ops::{Flatten, Reshape};

use crate::Result;
use prionn_tensor::{Scratch, Tensor};

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever the subsequent `backward`
/// needs (inputs, masks, im2col matrices), and `backward` populates parameter
/// gradients that the optimiser reads via [`Layer::visit_params`].
///
/// The contract callers rely on:
///
/// 1. `backward` must be preceded by a `forward` on the same batch;
/// 2. `visit_params` yields `(parameter, gradient)` pairs in a stable order
///    across calls — optimiser state (momentum/Adam moments) is keyed by that
///    order;
/// 3. `state` / `load_state` round-trip all learned parameters, enabling the
///    paper's warm-started online retraining;
/// 4. both passes draw every sizeable temporary from the shared [`Scratch`]
///    workspace and recycle buffers they are done with, so steady-state
///    training over fixed shapes performs no heap allocation.
pub trait Layer: Send {
    /// Compute the layer output for a batch. `train` toggles train-only
    /// behaviour (dropout sampling). `scratch` supplies pooled buffers and
    /// GEMM pack workspaces; outputs may be built from pooled storage.
    fn forward(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Result<Tensor>;

    /// Propagate the loss gradient; returns the gradient w.r.t. the input.
    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor>;

    /// Visit `(parameter, gradient)` pairs in a stable order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &Tensor)) {}

    /// Number of learnable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Stable names for the tensors yielded by [`Layer::state`], in the
    /// same order. Parameterless layers return the empty slice. Checkpoint
    /// code keys persisted tensors by `{layer_index}.{name}.{state_key}`,
    /// so these strings are part of the on-disk format — never reorder or
    /// rename them without bumping the checkpoint format version.
    fn state_keys(&self) -> &'static [&'static str] {
        &[]
    }

    /// Snapshot learned parameters (possibly empty).
    fn state(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Restore parameters from the front of `state`; returns how many
    /// tensors were consumed.
    fn load_state(&mut self, _state: &[Tensor]) -> Result<usize> {
        Ok(0)
    }

    /// Switch eval-mode (`train == false`) forwards to an int8 quantized
    /// weight path, where the layer supports one. Layers without a
    /// quantized path (activations, pooling — and convolutions, whose
    /// per-sample im2col GEMMs are too small to amortise requantization)
    /// ignore the call and keep serving f32. Training passes always use
    /// f32 weights regardless.
    ///
    /// Implementations must re-quantize inside [`Layer::load_state`] when
    /// already quantized, so a weight hot-swap atomically refreshes the
    /// packed int8 codes too.
    fn quantize(&mut self) {}

    /// Drop quantized weights and return eval forwards to f32.
    fn dequantize(&mut self) {}

    /// Whether an int8 quantized inference path is currently active.
    fn is_quantized(&self) -> bool {
        false
    }
}
