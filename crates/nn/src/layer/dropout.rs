//! Inverted dropout.

use super::Layer;
use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at eval time it is the
/// identity, so no rescaling is needed at inference.
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(TensorError::InvalidArgument(format!(
                "dropout p={p} outside [0,1)"
            )));
        }
        Ok(Dropout {
            p,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        })
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        // Recycle a stale mask left by a forward-only pass (predict).
        if let Some(old) = self.mask.take() {
            scratch.recycle(old);
        }
        if !train || self.p == 0.0 {
            let mut mask = scratch.take(x.len());
            mask.fill(1.0);
            self.mask = Some(mask);
            let mut out = scratch.take(x.len());
            out.copy_from_slice(x.as_slice());
            return Tensor::from_vec(x.shape().clone(), out);
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = scratch.take(x.len());
        for m in mask.iter_mut() {
            *m = if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            };
        }
        let mut out = scratch.take(x.len());
        for ((o, &xv), m) in out.iter_mut().zip(x.as_slice()).zip(&mask) {
            *o = xv * m;
        }
        self.mask = Some(mask);
        Tensor::from_vec(x.shape().clone(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let mask = self.mask.take().ok_or_else(|| {
            TensorError::InvalidArgument("dropout backward without forward".into())
        })?;
        if mask.len() != grad_out.len() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: grad_out.len(),
            });
        }
        let mut g = scratch.take(grad_out.len());
        for ((gv, &go), m) in g.iter_mut().zip(grad_out.as_slice()).zip(&mask) {
            *gv = go * m;
        }
        scratch.recycle(mask);
        Tensor::from_vec(grad_out.shape().clone(), g)
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, false, &mut s).unwrap(), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::full([10_000], 1.0);
        let y = d.forward(&x, true, &mut s).unwrap();
        let mean = prionn_tensor::ops::mean(&y);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropped_elements_block_gradient() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let mut s = Scratch::new();
        let x = Tensor::full([64], 1.0);
        let y = d.forward(&x, true, &mut s).unwrap();
        let g = d.backward(&Tensor::full([64], 1.0), &mut s).unwrap();
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn rejects_invalid_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }
}
