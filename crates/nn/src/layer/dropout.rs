//! Inverted dropout.

use super::Layer;
use crate::Result;
use prionn_tensor::{Tensor, TensorError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at eval time it is the
/// identity, so no rescaling is needed at inference.
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(TensorError::InvalidArgument(format!(
                "dropout p={p} outside [0,1)"
            )));
        }
        Ok(Dropout {
            p,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        })
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        if !train || self.p == 0.0 {
            self.mask = Some(vec![1.0; x.len()]);
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = x.clone();
        for (v, m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or_else(|| {
            TensorError::InvalidArgument("dropout backward without forward".into())
        })?;
        if mask.len() != grad_out.len() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: grad_out.len(),
            });
        }
        let mut g = grad_out.clone();
        for (gv, m) in g.as_mut_slice().iter_mut().zip(&mask) {
            *gv *= m;
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2).unwrap();
        let x = Tensor::full([10_000], 1.0);
        let y = d.forward(&x, true).unwrap();
        let mean = prionn_tensor::ops::mean(&y);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropped_elements_block_gradient() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::full([64], 1.0);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::full([64], 1.0)).unwrap();
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn rejects_invalid_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }
}
