//! Shape-adapter layers: `Flatten` and `Reshape`.

use super::Layer;
use crate::Result;
use prionn_tensor::{Scratch, Tensor, TensorError};

/// Copy a tensor's elements into a pooled buffer and rebuild it with `dims`.
fn pooled_reshape(scratch: &mut Scratch, x: &Tensor, dims: Vec<usize>) -> Result<Tensor> {
    let mut buf = scratch.take(x.len());
    buf.copy_from_slice(x.as_slice());
    Tensor::from_vec(dims, buf)
}

/// Flatten `[batch, d1, d2, ...]` to `[batch, d1·d2·...]`.
#[derive(Default)]
pub struct Flatten {
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        if x.rank() < 2 {
            return Err(TensorError::RankMismatch {
                op: "flatten",
                expected: 2,
                actual: x.rank(),
            });
        }
        let batch = x.dims()[0];
        let inner: usize = x.dims()[1..].iter().product();
        self.in_dims = Some(x.dims().to_vec());
        pooled_reshape(scratch, x, vec![batch, inner])
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let dims = self.in_dims.take().ok_or_else(|| {
            TensorError::InvalidArgument("flatten backward without forward".into())
        })?;
        pooled_reshape(scratch, grad_out, dims)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// Reshape the per-sample trailing axes to a fixed shape, keeping the batch
/// axis. Used to present the flattened script sequence as `[batch, C, 1, L]`
/// for the 1-D CNN.
pub struct Reshape {
    trailing: Vec<usize>,
    in_dims: Option<Vec<usize>>,
}

impl Reshape {
    /// Reshape each sample to `trailing` (e.g. `[4, 1, 4096]`).
    pub fn new(trailing: impl Into<Vec<usize>>) -> Self {
        Reshape {
            trailing: trailing.into(),
            in_dims: None,
        }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, x: &Tensor, _train: bool, scratch: &mut Scratch) -> Result<Tensor> {
        if x.rank() < 1 {
            return Err(TensorError::RankMismatch {
                op: "reshape",
                expected: 1,
                actual: 0,
            });
        }
        let batch = x.dims()[0];
        let inner: usize = x.dims()[1..].iter().product();
        let target: usize = self.trailing.iter().product();
        if inner != target {
            return Err(TensorError::LengthMismatch {
                expected: target,
                actual: inner,
            });
        }
        self.in_dims = Some(x.dims().to_vec());
        let mut dims = vec![batch];
        dims.extend_from_slice(&self.trailing);
        pooled_reshape(scratch, x, dims)
    }

    fn backward(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        let dims = self.in_dims.take().ok_or_else(|| {
            TensorError::InvalidArgument("reshape backward without forward".into())
        })?;
        pooled_reshape(scratch, grad_out, dims)
    }

    fn name(&self) -> &'static str {
        "reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let mut s = Scratch::new();
        let x = Tensor::zeros([2, 3, 4, 5]);
        let y = f.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        let dx = f.backward(&y, &mut s).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn flatten_rejects_rank1() {
        let mut f = Flatten::new();
        let mut s = Scratch::new();
        assert!(f.forward(&Tensor::zeros([5]), true, &mut s).is_err());
    }

    #[test]
    fn reshape_changes_trailing_axes() {
        let mut r = Reshape::new([4, 1, 6]);
        let mut s = Scratch::new();
        let x = Tensor::zeros([3, 24]);
        let y = r.forward(&x, true, &mut s).unwrap();
        assert_eq!(y.dims(), &[3, 4, 1, 6]);
        let dx = r.backward(&y, &mut s).unwrap();
        assert_eq!(dx.dims(), &[3, 24]);
    }

    #[test]
    fn reshape_rejects_element_mismatch() {
        let mut r = Reshape::new([4, 5]);
        let mut s = Scratch::new();
        assert!(r.forward(&Tensor::zeros([3, 24]), true, &mut s).is_err());
    }
}
