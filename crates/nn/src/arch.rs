//! The paper's three model architectures behind one configuration type.
//!
//! * **NN** — the mapped script flattened to one long vector through a stack
//!   of fully connected layers (paper §2.2, "many fully connected hidden
//!   layers"); the largest parameter count and the slowest to train (Fig 6).
//! * **1D-CNN** — the flattened sequence through 1-D convolutions (realised
//!   as `1×k` 2-D convolutions); the cheapest to train but least accurate
//!   (Figs 6–7).
//! * **2D-CNN** — the paper's production model: four convolutional layers
//!   followed by four fully connected layers over the `64×64` grid.
//!
//! Output heads are classifiers, as in the paper: each output node maps to a
//! value bin (e.g. 960 runtime-minute bins for the Cab cluster's 16 h cap).

use crate::layer::{BatchNorm, Conv2d, Dense, Flatten, MaxPool2d, ReLU, Reshape};
use crate::model::Sequential;
use crate::Result;
use prionn_tensor::TensorError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which of the paper's three deep-learning models to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Fully connected network on the flattened mapping.
    Nn,
    /// 1-D CNN on the flattened sequence.
    Cnn1d,
    /// 2-D CNN on the preserved script grid (PRIONN's choice).
    Cnn2d,
}

impl ModelKind {
    /// All three kinds, in the order the paper presents them.
    pub const ALL: [ModelKind; 3] = [ModelKind::Nn, ModelKind::Cnn1d, ModelKind::Cnn2d];

    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Nn => "NN",
            ModelKind::Cnn1d => "1D-CNN",
            ModelKind::Cnn2d => "2D-CNN",
        }
    }
}

/// Architecture hyperparameters shared by all three builders.
#[derive(Debug, Clone)]
pub struct ArchConfig {
    /// Embedding channels per character (1 binary/simple, 4 word2vec
    /// as PRIONN configures it, 128 one-hot).
    pub emb_dim: usize,
    /// Script grid height (paper: 64 rows).
    pub grid_h: usize,
    /// Script grid width (paper: 64 columns).
    pub grid_w: usize,
    /// Output classifier bins (paper: 960 runtime minutes).
    pub classes: usize,
    /// Base convolutional width; channel counts scale from this.
    pub base_width: usize,
    /// Insert batch normalisation after every convolution (extension; the
    /// paper's model has none).
    pub batch_norm: bool,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl ArchConfig {
    /// The paper's configuration for a given embedding width and bin count:
    /// a 64×64 grid and base width 8.
    pub fn paper(emb_dim: usize, classes: usize) -> Self {
        ArchConfig {
            emb_dim,
            grid_h: 64,
            grid_w: 64,
            classes,
            base_width: 8,
            batch_norm: false,
            seed: 0x9e37,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.emb_dim == 0 || self.classes == 0 || self.base_width == 0 {
            return Err(TensorError::InvalidArgument(
                "zero-sized architecture field".into(),
            ));
        }
        if self.grid_h < 16 || self.grid_w < 16 {
            return Err(TensorError::InvalidArgument(format!(
                "grid {}x{} too small for 4 conv+pool stages (needs >=16)",
                self.grid_h, self.grid_w
            )));
        }
        if !self.grid_h.is_multiple_of(16) || !self.grid_w.is_multiple_of(16) {
            return Err(TensorError::InvalidArgument(format!(
                "grid {}x{} must be divisible by 16 so four 2x2 pools tile evenly",
                self.grid_h, self.grid_w
            )));
        }
        Ok(())
    }

    /// Build the requested model kind.
    pub fn build(&self, kind: ModelKind) -> Result<Sequential> {
        match kind {
            ModelKind::Nn => build_nn(self),
            ModelKind::Cnn1d => build_cnn1d(self),
            ModelKind::Cnn2d => build_cnn2d(self),
        }
    }
}

/// The fully connected model: flatten → 512 → 256 → 128 → classes.
pub fn build_nn(cfg: &ArchConfig) -> Result<Sequential> {
    cfg.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let input = cfg.emb_dim * cfg.grid_h * cfg.grid_w;
    let w = cfg.base_width;
    Ok(Sequential::new()
        .push(Flatten::new())
        .push(Dense::new(input, 64 * w, &mut rng))
        .push(ReLU::new())
        .push(Dense::new(64 * w, 32 * w, &mut rng))
        .push(ReLU::new())
        .push(Dense::new(32 * w, 16 * w, &mut rng))
        .push(ReLU::new())
        .push(Dense::new(16 * w, cfg.classes, &mut rng)))
}

/// The 1-D CNN: reshape to `[emb, 1, H·W]`, two strided `1×k` convolutions
/// with pooling, then two fully connected layers.
pub fn build_cnn1d(cfg: &ArchConfig) -> Result<Sequential> {
    cfg.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let len = cfg.grid_h * cfg.grid_w;
    let w = cfg.base_width;

    let conv1 = Conv2d::new_1d(cfg.emb_dim, w, len, 7, 4, 3, &mut rng)?;
    let l1 = conv1.out_hw().1;
    let pool1 = MaxPool2d::with_window(1, 2)?;
    let l1p = l1 / 2;

    let conv2 = Conv2d::new_1d(w, 2 * w, l1p, 5, 4, 2, &mut rng)?;
    let l2 = conv2.out_hw().1;
    let pool2 = MaxPool2d::with_window(1, 2)?;
    let l2p = l2 / 2;

    let flat = 2 * w * l2p;
    Ok(Sequential::new()
        .push(Reshape::new([cfg.emb_dim, 1, len]))
        .push(conv1)
        .push(ReLU::new())
        .push(pool1)
        .push(conv2)
        .push(ReLU::new())
        .push(pool2)
        .push(Flatten::new())
        .push(Dense::new(flat, 16 * w, &mut rng))
        .push(ReLU::new())
        .push(Dense::new(16 * w, cfg.classes, &mut rng)))
}

/// The 2-D CNN (PRIONN's production model): four `3×3` convolutions, each
/// followed by ReLU and `2×2` max pooling, then four fully connected layers.
pub fn build_cnn2d(cfg: &ArchConfig) -> Result<Sequential> {
    cfg.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let w = cfg.base_width;
    let (h0, w0) = (cfg.grid_h, cfg.grid_w);

    // Stage sizes after each 2x2 pool.
    let (h1, w1) = (h0 / 2, w0 / 2);
    let (h2, w2) = (h1 / 2, w1 / 2);
    let (h3, w3) = (h2 / 2, w2 / 2);
    let (h4, w4) = (h3 / 2, w3 / 2);

    let conv1 = Conv2d::new(cfg.emb_dim, w, h0, w0, 3, 1, 1, &mut rng)?;
    let conv2 = Conv2d::new(w, 2 * w, h1, w1, 3, 1, 1, &mut rng)?;
    let conv3 = Conv2d::new(2 * w, 2 * w, h2, w2, 3, 1, 1, &mut rng)?;
    let conv4 = Conv2d::new(2 * w, 4 * w, h3, w3, 3, 1, 1, &mut rng)?;
    let flat = 4 * w * h4 * w4;

    let mut m = Sequential::new();
    let stage = |m: &mut Sequential, conv: Conv2d, out_c: usize| -> Result<()> {
        let bn = cfg.batch_norm;
        m.push_boxed(Box::new(conv));
        if bn {
            m.push_boxed(Box::new(BatchNorm::new(out_c)?));
        }
        m.push_boxed(Box::new(ReLU::new()));
        m.push_boxed(Box::new(MaxPool2d::new(2)?));
        Ok(())
    };
    stage(&mut m, conv1, w)?;
    stage(&mut m, conv2, 2 * w)?;
    stage(&mut m, conv3, 2 * w)?;
    stage(&mut m, conv4, 4 * w)?;
    m.push_boxed(Box::new(Flatten::new()));
    m.push_boxed(Box::new(Dense::new(flat, 32 * w, &mut rng)));
    m.push_boxed(Box::new(ReLU::new()));
    m.push_boxed(Box::new(Dense::new(32 * w, 16 * w, &mut rng)));
    m.push_boxed(Box::new(ReLU::new()));
    m.push_boxed(Box::new(Dense::new(16 * w, 16 * w, &mut rng)));
    m.push_boxed(Box::new(ReLU::new()));
    m.push_boxed(Box::new(Dense::new(16 * w, cfg.classes, &mut rng)));
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_tensor::Tensor;

    fn cfg() -> ArchConfig {
        ArchConfig {
            emb_dim: 4,
            grid_h: 32,
            grid_w: 32,
            classes: 10,
            base_width: 4,
            batch_norm: false,
            seed: 1,
        }
    }

    #[test]
    fn cnn2d_forward_shape() {
        let mut m = build_cnn2d(&cfg()).unwrap();
        let x = Tensor::zeros([2, 4, 32, 32]);
        let y = m.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn cnn1d_forward_shape_from_sequence() {
        let mut m = build_cnn1d(&cfg()).unwrap();
        let x = Tensor::zeros([3, 4, 32 * 32]);
        let y = m.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[3, 10]);
    }

    #[test]
    fn nn_accepts_grid_or_sequence() {
        let mut m = build_nn(&cfg()).unwrap();
        let grid = Tensor::zeros([2, 4, 32, 32]);
        assert_eq!(m.forward(&grid, false).unwrap().dims(), &[2, 10]);
        let seq = Tensor::zeros([2, 4, 32 * 32]);
        assert_eq!(m.forward(&seq, false).unwrap().dims(), &[2, 10]);
    }

    #[test]
    fn paper_config_builds_all_kinds() {
        let cfg = ArchConfig::paper(4, 960);
        for kind in ModelKind::ALL {
            let m = cfg.build(kind).unwrap();
            assert!(m.param_count() > 0, "{kind:?}");
        }
    }

    #[test]
    fn nn_has_most_parameters_cnn1d_fewest_compute() {
        // The paper's cost ordering (Fig 6) stems from the NN's giant first
        // dense layer; assert the parameter-count ordering that drives it.
        let cfg = ArchConfig::paper(4, 960);
        let nn = build_nn(&cfg).unwrap().param_count();
        let c2 = build_cnn2d(&cfg).unwrap().param_count();
        assert!(nn > c2, "NN {nn} should exceed 2D-CNN {c2}");
    }

    #[test]
    fn batch_norm_variant_builds_and_runs() {
        let mut c = cfg();
        c.batch_norm = true;
        let mut m = build_cnn2d(&c).unwrap();
        let x = Tensor::zeros([2, 4, 32, 32]);
        assert_eq!(m.forward(&x, true).unwrap().dims(), &[2, 10]);
        let plain = build_cnn2d(&cfg()).unwrap();
        assert!(m.param_count() > plain.param_count(), "BN adds gamma/beta");
    }

    #[test]
    fn rejects_indivisible_grid() {
        let mut c = cfg();
        c.grid_h = 24; // 24/16 not integral
        assert!(build_cnn2d(&c).is_err());
    }

    #[test]
    fn rejects_zero_fields() {
        let mut c = cfg();
        c.classes = 0;
        assert!(build_nn(&c).is_err());
    }

    #[test]
    fn training_step_runs_end_to_end_on_cnn2d() {
        use crate::loss::{LossTarget, SoftmaxCrossEntropy};
        use crate::optim::Sgd;
        let mut m = build_cnn2d(&cfg()).unwrap();
        let x = prionn_tensor::init::uniform(
            [4, 4, 32, 32],
            -1.0,
            1.0,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(2),
        );
        let y = [0usize, 1, 2, 3];
        let mut opt = Sgd::new(0.01);
        let l1 = m
            .train_batch(&x, &LossTarget::Classes(&y), &SoftmaxCrossEntropy, &mut opt)
            .unwrap();
        assert!(l1.is_finite());
    }
}
