//! End-to-end numerical gradient check through a full conv-pool-dense stack
//! with the softmax cross-entropy loss — the strongest single correctness
//! guarantee for the backprop implementation.

use prionn_nn::layer::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
use prionn_nn::{Loss, LossTarget, Sequential, SoftmaxCrossEntropy};
use prionn_tensor::{ops, Scratch, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn model(rng: &mut ChaCha8Rng) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(2, 3, 8, 8, 3, 1, 1, rng).unwrap())
        .push(ReLU::new())
        .push(MaxPool2d::new(2).unwrap())
        .push(Flatten::new())
        .push(Dense::new(3 * 4 * 4, 10, rng))
}

fn loss_of(model: &mut Sequential, x: &Tensor, y: &[usize]) -> f32 {
    let out = model.forward(x, true).unwrap();
    let (l, _) = SoftmaxCrossEntropy
        .loss_and_grad(&out, &LossTarget::Classes(y), &mut Scratch::new())
        .unwrap();
    l
}

#[test]
fn full_network_input_gradient_matches_finite_differences() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut m = model(&mut rng);
    let x = prionn_tensor::init::uniform([2, 2, 8, 8], -1.0, 1.0, &mut rng);
    let y = [3usize, 7usize];

    // Analytic input gradient.
    let out = m.forward(&x, true).unwrap();
    let (_, grad_out) = SoftmaxCrossEntropy
        .loss_and_grad(&out, &LossTarget::Classes(&y), &mut Scratch::new())
        .unwrap();
    let dx = m.backward(&grad_out).unwrap();

    // Numerical check on a spread of input coordinates.
    let eps = 1e-2f32;
    for &(b, c, i, j) in &[
        (0usize, 0usize, 0usize, 0usize),
        (1, 1, 3, 5),
        (0, 1, 7, 7),
        (1, 0, 4, 2),
    ] {
        let idx = [b, c, i, j];
        let orig = x.get(&idx).unwrap();
        let mut xp = x.clone();
        xp.set(&idx, orig + eps).unwrap();
        let up = loss_of(&mut m, &xp, &y);
        xp.set(&idx, orig - eps).unwrap();
        let dn = loss_of(&mut m, &xp, &y);
        let numeric = (up - dn) / (2.0 * eps);
        let analytic = dx.get(&idx).unwrap();
        assert!(
            (numeric - analytic).abs() < 2e-3 + 0.1 * analytic.abs(),
            "input grad at {idx:?}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

#[test]
fn full_network_weight_gradients_match_finite_differences() {
    // Seed choice matters more than usual here: the probe below perturbs
    // single conv weights, and a draw that parks a maxpool window near a
    // tie makes the secant straddle a kink where finite differences and
    // the (correct) analytic gradient legitimately disagree.
    let mut rng = ChaCha8Rng::seed_from_u64(24);
    let mut m = model(&mut rng);
    let x = prionn_tensor::init::uniform([2, 2, 8, 8], -1.0, 1.0, &mut rng);
    let y = [1usize, 9usize];

    let out = m.forward(&x, true).unwrap();
    let (_, grad_out) = SoftmaxCrossEntropy
        .loss_and_grad(&out, &LossTarget::Classes(&y), &mut Scratch::new())
        .unwrap();
    m.backward(&grad_out).unwrap();

    // Collect analytic (param pointer, grad snapshot) pairs via the visitor,
    // then perturb selected scalars of every parameter tensor.
    // Sequential has no public parameter visitor; capture gradients through
    // `step` with a probe optimiser that records instead of updating.
    let mut analytic: Vec<(usize, Vec<f32>)> = Vec::new();
    {
        struct Probe<'a>(&'a mut Vec<(usize, Vec<f32>)>);
        impl prionn_nn::Optimizer for Probe<'_> {
            fn begin_step(&mut self) {}
            fn update(&mut self, slot: usize, _p: &mut Tensor, g: &Tensor) {
                self.0.push((slot, g.as_slice().to_vec()));
            }
            fn learning_rate(&self) -> f32 {
                0.0
            }
            fn set_learning_rate(&mut self, _lr: f32) {}
        }
        let mut probe = Probe(&mut analytic);
        m.step(&mut probe);
    }
    assert_eq!(analytic.len(), 4, "conv w/b + dense w/b");

    // Numerically check one scalar per parameter tensor via a fresh model
    // restored from the same state (step with lr 0 left weights unchanged).
    // The step must stay small relative to the pre-activation scale: a
    // large perturbation of an early conv weight can flip a maxpool winner
    // or a ReLU sign, and the secant then straddles a kink where the
    // analytic gradient legitimately disagrees.
    let eps = 2e-3f32;
    let state = m.state();
    for (slot, grads) in &analytic {
        let probe_idx = grads.len() / 2;
        let mut perturbed_up = state.clone();
        perturbed_up[*slot].as_mut_slice()[probe_idx] += eps;
        let mut perturbed_dn = state.clone();
        perturbed_dn[*slot].as_mut_slice()[probe_idx] -= eps;

        let mut rng2 = ChaCha8Rng::seed_from_u64(24);
        let mut m_up = model(&mut rng2);
        m_up.load_state(&perturbed_up).unwrap();
        let mut rng3 = ChaCha8Rng::seed_from_u64(24);
        let mut m_dn = model(&mut rng3);
        m_dn.load_state(&perturbed_dn).unwrap();

        let numeric = (loss_of(&mut m_up, &x, &y) - loss_of(&mut m_dn, &x, &y)) / (2.0 * eps);
        let a = grads[probe_idx];
        assert!(
            (numeric - a).abs() < 2e-3 + 0.1 * a.abs(),
            "slot {slot} idx {probe_idx}: numeric {numeric} vs analytic {a}"
        );
    }

    // Verify the sum of per-parameter element counts matches param_count.
    let total: usize = state.iter().map(|t| t.len()).sum();
    assert_eq!(total, m.param_count());
}

#[test]
fn ordering_of_visit_params_is_stable_across_steps() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut m = model(&mut rng);
    let x = prionn_tensor::init::uniform([1, 2, 8, 8], -1.0, 1.0, &mut rng);
    let y = [0usize];
    struct Shapes(Vec<Vec<usize>>);
    impl prionn_nn::Optimizer for Shapes {
        fn begin_step(&mut self) {}
        fn update(&mut self, _slot: usize, p: &mut Tensor, _g: &Tensor) {
            self.0.push(p.dims().to_vec());
        }
        fn learning_rate(&self) -> f32 {
            0.0
        }
        fn set_learning_rate(&mut self, _lr: f32) {}
    }
    let mut first = Shapes(Vec::new());
    let mut second = Shapes(Vec::new());
    let out = m.forward(&x, true).unwrap();
    let (_, g) = SoftmaxCrossEntropy
        .loss_and_grad(&out, &LossTarget::Classes(&y), &mut Scratch::new())
        .unwrap();
    m.backward(&g).unwrap();
    m.step(&mut first);
    let out = m.forward(&x, true).unwrap();
    let (_, g) = SoftmaxCrossEntropy
        .loss_and_grad(&out, &LossTarget::Classes(&y), &mut Scratch::new())
        .unwrap();
    m.backward(&g).unwrap();
    m.step(&mut second);
    assert_eq!(
        first.0, second.0,
        "slot ordering must be stable for optimiser state"
    );
}

#[test]
fn training_reduces_loss_on_the_full_stack() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut m = model(&mut rng);
    let x = prionn_tensor::init::uniform([8, 2, 8, 8], -1.0, 1.0, &mut rng);
    let y: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut opt = prionn_nn::Adam::new(3e-3);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..60 {
        let out = m.forward(&x, true).unwrap();
        let (l, g) = SoftmaxCrossEntropy
            .loss_and_grad(&out, &LossTarget::Classes(&y), &mut Scratch::new())
            .unwrap();
        m.backward(&g).unwrap();
        m.step(&mut opt);
        first.get_or_insert(l);
        last = l;
    }
    assert!(last < first.unwrap() * 0.5, "{} -> {last}", first.unwrap());
    // Sanity: softmax of the final logits is a distribution.
    let out = m.forward(&x, false).unwrap();
    let probs = SoftmaxCrossEntropy::softmax(&out).unwrap();
    for r in 0..8 {
        let s: f32 = probs.row(r).unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }
    let _ = ops::sum(&out);
}
