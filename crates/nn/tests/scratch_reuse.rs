//! Zero-allocation hot-path acceptance test: after a warm-up step, repeated
//! training steps over fixed shapes must be served entirely from the
//! [`prionn_tensor::Scratch`] pool — `ScratchStats::grows` stays flat.

use prionn_nn::layer::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, ReLU};
use prionn_nn::{LossTarget, Sequential, Sgd, SoftmaxCrossEntropy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_cnn(rng: &mut ChaCha8Rng) -> Sequential {
    // 1x8x8 input -> conv(4,k3,p1) -> relu -> pool2 -> flatten -> dense(10).
    Sequential::new()
        .push(Conv2d::new(1, 4, 8, 8, 3, 1, 1, rng).unwrap())
        .push(ReLU::new())
        .push(MaxPool2d::new(2).unwrap())
        .push(Dropout::new(0.25, 42).unwrap())
        .push(Flatten::new())
        .push(Dense::new(4 * 4 * 4, 10, rng))
}

#[test]
fn steady_state_training_does_not_grow_the_pool() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut model = small_cnn(&mut rng);
    let mut opt = Sgd::new(0.01);
    let loss = SoftmaxCrossEntropy;
    let x = prionn_tensor::init::uniform([6, 1, 8, 8], -1.0, 1.0, &mut rng);
    let classes: Vec<usize> = (0..6).map(|i| i % 10).collect();
    let target = LossTarget::Classes(&classes);

    // Warm-up: first steps populate the pool and pack workspaces.
    for _ in 0..2 {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    }
    let warm = model.scratch_stats();
    assert!(warm.takes > 0, "training must draw from the pool");

    // Steady state: every take must now hit the pool.
    for _ in 0..8 {
        model.train_batch(&x, &target, &loss, &mut opt).unwrap();
    }
    let after = model.scratch_stats();
    assert_eq!(
        after.grows, warm.grows,
        "steady-state training allocated fresh buffers: {warm:?} -> {after:?}"
    );
    assert_eq!(after.takes - warm.takes, after.hits - warm.hits);
    assert!(after.gemm.calls > warm.gemm.calls, "GEMM stats must flow");
}

#[test]
fn steady_state_prediction_does_not_grow_the_pool() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let mut model = small_cnn(&mut rng);
    let x = prionn_tensor::init::uniform([4, 1, 8, 8], -1.0, 1.0, &mut rng);

    // The pool needs one extra round to reach its best-fit fixed point
    // because the first call grows buffers in a different interleaving.
    for _ in 0..3 {
        model.predict(&x, 4).unwrap();
    }
    let warm = model.scratch_stats();
    for _ in 0..6 {
        let out = model.predict(&x, 4).unwrap();
        assert_eq!(out.dims(), &[4, 10]);
    }
    let after = model.scratch_stats();
    assert_eq!(
        after.grows, warm.grows,
        "steady-state predict allocated fresh buffers: {warm:?} -> {after:?}"
    );
}

#[test]
fn gemm_throughput_counters_populate() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let mut model = Sequential::new().push(Dense::new(64, 32, &mut rng));
    let x = prionn_tensor::init::uniform([16, 64], -1.0, 1.0, &mut rng);
    model.forward(&x, false).unwrap();
    let st = model.scratch_stats();
    assert!(st.gemm.calls >= 1);
    assert!(st.gemm.flops > 0.0);
    assert!(st.gemm_gflops() > 0.0);
    let share = st.gemm_pack_share();
    assert!((0.0..=1.0).contains(&share));
}
