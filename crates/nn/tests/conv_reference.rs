//! The im2col-based convolution against a naive direct reference
//! implementation, across random geometries — property-tested.

use prionn_nn::layer::Conv2d;
use prionn_nn::Layer;
use prionn_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Direct convolution: out[b][oc][oy][ox] =
///   bias[oc] + sum_{ic,ky,kx} w[oc][ic][ky][kx] * x[b][ic][oy*s+ky-p][ox*s+kx-p]
#[allow(clippy::too_many_arguments)]
fn naive_conv(
    x: &Tensor,
    w: &Tensor, // [out_c, in_c*kh*kw]
    bias: &[f32],
    in_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let (batch, h, wid) = (x.dims()[0], x.dims()[2], x.dims()[3]);
    let out_c = w.dims()[0];
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (wid + 2 * pad - k) / stride + 1;
    let xs = x.as_slice();
    let ws = w.as_slice();
    let mut out = vec![0.0f32; batch * out_c * oh * ow];
    for b in 0..batch {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                    continue;
                                }
                                let xv =
                                    xs[((b * in_c + ic) * h + iy as usize) * wid + ix as usize];
                                let wv = ws[oc * (in_c * k * k) + (ic * k + ky) * k + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[((b * out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv2d_matches_naive_reference(
        in_c in 1usize..3,
        out_c in 1usize..4,
        h in 4usize..10,
        wid in 4usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(h + 2 * pad >= k && wid + 2 * pad >= k);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut conv =
            Conv2d::new(in_c, out_c, h, wid, k, stride, pad, &mut rng).unwrap();
        // Give the layer a random bias too (state round-trip sets it).
        let mut state = conv.state();
        state[1] = prionn_tensor::init::uniform([out_c], -1.0, 1.0, &mut rng);
        conv.load_state(&state).unwrap();

        let x = prionn_tensor::init::uniform([2, in_c, h, wid], -1.0, 1.0, &mut rng);
        let fast = conv
            .forward(&x, false, &mut prionn_tensor::Scratch::new())
            .unwrap();
        let naive = naive_conv(&x, &state[0], state[1].as_slice(), in_c, k, stride, pad);
        prop_assert_eq!(fast.len(), naive.len());
        for (i, (a, b)) in fast.as_slice().iter().zip(&naive).enumerate() {
            prop_assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }
}
