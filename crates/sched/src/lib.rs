//! Event-driven HPC cluster simulation — the stand-in for the Flux
//! resource-manager simulator the paper drives with its predictions (§4).
//!
//! * [`engine`] — an incremental FCFS + EASY-backfill scheduler over a node
//!   pool; jobs run for their *actual* runtime while the scheduler plans
//!   with caller-supplied *estimates* (user requests or model predictions);
//! * [`snapshot`] — the paper's turnaround-time predictor (§4.2): at each
//!   submission, copy the system state, replace every runtime with its
//!   prediction, and roll the copy forward until the new job completes;
//! * [`io`] — per-minute system IO timelines summed over running jobs'
//!   bandwidths (§4.3);
//! * [`burst`] — IO-burst detection at the paper's mean + 1σ threshold and
//!   the windowed sensitivity/precision matching of Figs 13 & 15.

pub mod burst;
pub mod engine;
pub mod io;
pub mod io_aware;
pub mod snapshot;

pub use burst::{burst_metrics, burst_threshold, BurstMetrics};
pub use engine::{
    simulate_with_telemetry, KilledJob, RunningJob, Schedule, ScheduleEntry, SimEngine, SimJob,
};
pub use io::{horizon_minutes, io_timeline, minute_contribution, JobIoInterval};
pub use io_aware::{simulate_io_aware, IoAwareConfig, IoAwareEngine};
pub use snapshot::predict_turnarounds;
