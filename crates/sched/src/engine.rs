//! The incremental scheduling engine: FCFS with EASY backfilling.

use prionn_telemetry::{Counter, Histogram, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A job as the simulator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimJob {
    /// Stable job id.
    pub id: u64,
    /// Submission time, seconds.
    pub submit: u64,
    /// Nodes requested.
    pub nodes: u32,
    /// Actual runtime, seconds (drives completions).
    pub runtime: u64,
    /// Estimated runtime, seconds (drives planning/backfill — the user
    /// request or a model prediction).
    pub estimate: u64,
}

/// One scheduled job in the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Job id.
    pub id: u64,
    /// Submission time.
    pub submit: u64,
    /// Start time.
    pub start: u64,
    /// End time (`start + runtime`).
    pub end: u64,
}

impl ScheduleEntry {
    /// Turnaround = completion − submission.
    pub fn turnaround(&self) -> u64 {
        self.end - self.submit
    }

    /// Queue wait = start − submission.
    pub fn wait(&self) -> u64 {
        self.start - self.submit
    }
}

/// A completed simulation: entries in job-submission order.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Per-job placement, ordered by id ascending.
    pub entries: Vec<ScheduleEntry>,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    id: u64,
    nodes: u32,
    /// When the job started.
    start: u64,
    /// When the job will actually complete.
    end_actual: u64,
    /// When the scheduler *believes* it completes (start + estimate).
    end_estimated: u64,
}

/// One running job's full placement view, for progress taps and kill
/// policies that need more than the planning tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Job id.
    pub id: u64,
    /// Nodes held.
    pub nodes: u32,
    /// Start time, seconds.
    pub start: u64,
    /// Actual completion time (hidden from planning).
    pub end_actual: u64,
    /// Planned completion time (start + estimate, or start + interval `hi`
    /// after a revision).
    pub end_estimated: u64,
}

/// Record of a job terminated early by [`SimEngine::kill_running`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KilledJob {
    /// Job id.
    pub id: u64,
    /// Nodes it was holding.
    pub nodes: u32,
    /// When it started.
    pub started: u64,
    /// When the kill landed (the engine's `now`).
    pub killed_at: u64,
    /// When it would have actually completed had it run on.
    pub projected_end: u64,
}

impl KilledJob {
    /// Node-seconds the kill reclaimed: the occupancy the job would have
    /// burned between the kill and its actual completion.
    pub fn node_seconds_saved(&self) -> u64 {
        self.nodes as u64 * self.projected_end.saturating_sub(self.killed_at)
    }
}

/// Simulator instruments, resolved once when telemetry is attached.
#[derive(Debug, Clone)]
struct SchedInstruments {
    jobs_submitted: Counter,
    jobs_started: Counter,
    jobs_backfilled: Counter,
    jobs_killed: Counter,
    jobs_requeued: Counter,
    sim_steps: Counter,
    submit_seconds: Histogram,
}

impl SchedInstruments {
    fn build(t: &Telemetry) -> Self {
        SchedInstruments {
            jobs_submitted: t.counter("sched_jobs_submitted_total", "Jobs submitted to the engine"),
            jobs_started: t.counter("sched_jobs_started_total", "Jobs placed on nodes"),
            jobs_backfilled: t.counter(
                "sched_jobs_backfilled_total",
                "Jobs started by EASY backfill ahead of the queue head",
            ),
            jobs_killed: t.counter(
                "sched_jobs_killed_total",
                "Running jobs terminated early by the kill policy",
            ),
            jobs_requeued: t.counter(
                "sched_jobs_requeued_total",
                "Killed jobs placed back on the queue for another attempt",
            ),
            sim_steps: t.counter(
                "sched_sim_steps_total",
                "Discrete simulation steps (completion sweeps + scheduling passes)",
            ),
            submit_seconds: t.histogram(
                "sched_submit_seconds",
                "Wall time of one submit() call (clock advance + scheduling pass)",
            ),
        }
    }
}

/// The incremental FCFS + EASY-backfill engine.
///
/// Cloneable by design: the snapshot turnaround predictor clones the live
/// state and rolls the copy forward under different runtimes.
#[derive(Debug, Clone)]
pub struct SimEngine {
    total_nodes: u32,
    free_nodes: u32,
    now: u64,
    running: Vec<Running>,
    queue: VecDeque<SimJob>,
    finished: Vec<ScheduleEntry>,
    /// Revised `[lo, hi]` runtime intervals by job id (seconds), kept as a
    /// side-table so [`SimJob`] stays a stable `Copy` record. Backfill
    /// fit-checks a candidate against its `lo` (optimistic: squeeze more
    /// work into holes); reservations use `hi` via `end_estimated`
    /// (pessimistic: never let backfill push the queue head back).
    intervals: HashMap<u64, (u64, u64)>,
    telemetry: Option<SchedInstruments>,
}

impl SimEngine {
    /// An empty cluster of `total_nodes` nodes at time 0.
    pub fn new(total_nodes: u32) -> Self {
        assert!(total_nodes > 0, "cluster needs nodes");
        SimEngine {
            total_nodes,
            free_nodes: total_nodes,
            now: 0,
            running: Vec::new(),
            queue: VecDeque::new(),
            finished: Vec::new(),
            intervals: HashMap::new(),
            telemetry: None,
        }
    }

    /// Attach a telemetry registry: the engine publishes
    /// `sched_jobs_submitted_total`, `sched_jobs_started_total`,
    /// `sched_jobs_backfilled_total`, `sched_sim_steps_total`, and the
    /// `sched_submit_seconds` latency histogram (sim-step throughput =
    /// `sched_sim_steps_total / sched_submit_seconds_sum`). Speculative
    /// forks made by [`SimEngine::fork_with_predictions`] never record —
    /// only the live engine's work counts.
    pub fn attach_telemetry(&mut self, t: &Telemetry) {
        self.telemetry = Some(SchedInstruments::build(t));
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Free node count.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Jobs currently executing: `(id, nodes, start-implied elapsed)` view.
    pub fn running_jobs(&self) -> impl Iterator<Item = (u64, u32, u64, u64)> + '_ {
        // (id, nodes, end_actual, end_estimated)
        self.running
            .iter()
            .map(|r| (r.id, r.nodes, r.end_actual, r.end_estimated))
    }

    /// Jobs currently executing, with start times — the view progress taps
    /// and kill policies consume.
    pub fn running_info(&self) -> impl Iterator<Item = RunningJob> + '_ {
        self.running.iter().map(|r| RunningJob {
            id: r.id,
            nodes: r.nodes,
            start: r.start,
            end_actual: r.end_actual,
            end_estimated: r.end_estimated,
        })
    }

    /// Jobs waiting in the queue.
    pub fn queued_jobs(&self) -> impl Iterator<Item = &SimJob> + '_ {
        self.queue.iter()
    }

    /// Install a revised `[lo, hi]` runtime interval (seconds) for job
    /// `id`. A running job's planned end moves to `start + hi` (the
    /// reservation end backfill must respect); a queued job will
    /// fit-check against `lo` when considered for backfill and reserve
    /// `hi` once started. Re-calling replaces the previous interval.
    /// Returns true if the job is currently running or queued.
    pub fn set_estimate_interval(&mut self, id: u64, lo_seconds: u64, hi_seconds: u64) -> bool {
        let lo = lo_seconds.max(1);
        let hi = hi_seconds.max(lo);
        self.intervals.insert(id, (lo, hi));
        if let Some(r) = self.running.iter_mut().find(|r| r.id == id) {
            // Never plan an end in the past: a job that already outlived
            // `hi` is treated as ending imminently.
            r.end_estimated = (r.start + hi).max(self.now + 1);
            return true;
        }
        self.queue.iter().any(|q| q.id == id)
    }

    /// Terminate running job `id` now, freeing its nodes and running a
    /// scheduling pass over the reclaimed space. The job's schedule entry
    /// is truncated to the kill time (it occupied nodes only that long).
    /// Returns what was reclaimed, or `None` if `id` is not running.
    pub fn kill_running(&mut self, id: u64) -> Option<KilledJob> {
        let idx = self.running.iter().position(|r| r.id == id)?;
        let r = self.running.swap_remove(idx);
        self.free_nodes += r.nodes;
        self.intervals.remove(&id);
        if let Some(tel) = &self.telemetry {
            tel.jobs_killed.inc();
        }
        // The entry pushed at start assumed a natural completion; the job
        // actually held its nodes only until now.
        if let Some(e) = self
            .finished
            .iter_mut()
            .rev()
            .find(|e| e.id == id && e.start == r.start)
        {
            e.end = self.now.max(e.start);
        }
        let killed = KilledJob {
            id: r.id,
            nodes: r.nodes,
            started: r.start,
            killed_at: self.now,
            projected_end: r.end_actual,
        };
        self.try_schedule();
        Some(killed)
    }

    /// Kill running job `id` and put it back on the queue for a fresh
    /// attempt (submitted at the current time, full runtime again, with
    /// `estimate_seconds` as its new planning estimate). Returns the kill
    /// record, or `None` if `id` is not running.
    pub fn kill_and_requeue(&mut self, id: u64, estimate_seconds: u64) -> Option<KilledJob> {
        let killed = self.kill_running(id)?;
        if let Some(tel) = &self.telemetry {
            tel.jobs_requeued.inc();
        }
        // Drop the truncated first-attempt entry: the retry's entry will
        // replace it when the job starts again.
        if let Some(pos) = self
            .finished
            .iter()
            .rposition(|e| e.id == id && e.start == killed.started)
        {
            self.finished.remove(pos);
        }
        self.queue.push_back(SimJob {
            id,
            submit: self.now,
            nodes: killed.nodes,
            runtime: killed.projected_end - killed.started,
            estimate: estimate_seconds.max(1),
        });
        self.try_schedule();
        Some(killed)
    }

    /// Completed entries so far.
    pub fn finished(&self) -> &[ScheduleEntry] {
        &self.finished
    }

    /// Advance the clock to `t`, completing every job whose actual end is
    /// `<= t` (in end-time order) and backfilling after each completion.
    pub fn advance_to(&mut self, t: u64) {
        debug_assert!(t >= self.now, "time cannot run backwards");
        loop {
            let next_end = self.running.iter().map(|r| r.end_actual).min();
            match next_end {
                Some(end) if end <= t => {
                    if let Some(tel) = &self.telemetry {
                        tel.sim_steps.inc();
                    }
                    self.now = end;
                    let mut i = 0;
                    while i < self.running.len() {
                        if self.running[i].end_actual == end {
                            let r = self.running.swap_remove(i);
                            self.free_nodes += r.nodes;
                            self.intervals.remove(&r.id);
                        } else {
                            i += 1;
                        }
                    }
                    self.try_schedule();
                }
                _ => break,
            }
        }
        self.now = t;
    }

    /// Submit a job at its `submit` time (the clock is advanced there) and
    /// run the scheduling pass.
    pub fn submit(&mut self, job: SimJob) {
        let timer = self
            .telemetry
            .as_ref()
            .map(|t| (t.jobs_submitted.clone(), t.submit_seconds.start_timer()));
        self.advance_to(job.submit.max(self.now));
        self.queue.push_back(job);
        self.try_schedule();
        if let Some((submitted, timer)) = timer {
            submitted.inc();
            timer.stop();
        }
    }

    /// Run until all submitted work has completed and return the schedule.
    pub fn drain(mut self) -> Schedule {
        while !self.running.is_empty() || !self.queue.is_empty() {
            match self.running.iter().map(|r| r.end_actual).min() {
                Some(end) => self.advance_to(end),
                None => {
                    // Queue non-empty but nothing running: should be
                    // impossible (any queued head fits an empty cluster or
                    // was rejected at submit).
                    unreachable!("queued jobs with an idle cluster");
                }
            }
        }
        let mut entries = self.finished;
        entries.sort_by_key(|e| e.id);
        Schedule { entries }
    }

    /// Clone the live state, replacing every job's runtime with a predicted
    /// total runtime — the paper's snapshot step (§4.2): "we replace the
    /// runtime of each job in execution and in the queue with the predicted
    /// job runtime".
    ///
    /// For running jobs the predicted *end* is `start + predicted_total`; if
    /// the job has already outlived its prediction, completion is assumed
    /// imminent (one second from now).
    pub fn fork_with_predictions(&self, predicted: impl Fn(u64) -> u64) -> SimEngine {
        let mut fork = self.clone();
        // Speculative what-if rollouts must not pollute the live metrics,
        // and the supplied predictions supersede any revised intervals.
        fork.telemetry = None;
        fork.finished.clear();
        fork.intervals.clear();
        for r in &mut fork.running {
            let end = r.start + predicted(r.id).max(1);
            let end = end.max(fork.now + 1);
            r.end_actual = end;
            r.end_estimated = end;
        }
        for q in &mut fork.queue {
            let p = predicted(q.id).max(1);
            q.runtime = p;
            q.estimate = p;
        }
        fork
    }

    /// Roll the engine forward until `target` completes and return its
    /// completion time, or `None` if the target is not present.
    ///
    /// A target that is already running resolves immediately: its end time
    /// is determined the moment it starts.
    pub fn run_until_finished(mut self, target: u64) -> Option<u64> {
        loop {
            if let Some(r) = self.running.iter().find(|r| r.id == target) {
                return Some(r.end_actual);
            }
            if let Some(e) = self.finished.iter().find(|e| e.id == target) {
                return Some(e.end);
            }
            if !self.queue.iter().any(|q| q.id == target) {
                return None;
            }
            let next_end = self.running.iter().map(|r| r.end_actual).min()?;
            self.advance_to(next_end);
        }
    }

    fn start_job(&mut self, job: SimJob) {
        if let Some(tel) = &self.telemetry {
            tel.jobs_started.inc();
        }
        self.free_nodes -= job.nodes;
        let start = self.now;
        // A revised interval's `hi` is the reservation the scheduler
        // plans around once the job holds nodes.
        let planning = match self.intervals.get(&job.id) {
            Some(&(_, hi)) => hi,
            None => job.estimate,
        };
        self.running.push(Running {
            id: job.id,
            nodes: job.nodes,
            start,
            end_actual: start + job.runtime,
            end_estimated: start + planning,
        });
        self.finished.push(ScheduleEntry {
            id: job.id,
            submit: job.submit,
            start,
            end: start + job.runtime,
        });
    }

    /// FCFS with conservative EASY backfill.
    fn try_schedule(&mut self) {
        if let Some(tel) = &self.telemetry {
            tel.sim_steps.inc();
        }
        // FCFS: start queue-head jobs while they fit.
        while let Some(head) = self.queue.front() {
            let nodes = head.nodes.min(self.total_nodes);
            if nodes <= self.free_nodes {
                let mut job = self.queue.pop_front().expect("checked non-empty");
                job.nodes = nodes;
                self.start_job(job);
            } else {
                break;
            }
        }
        let Some(head) = self.queue.front().copied() else {
            return;
        };

        // Shadow time: when will the head job first fit, assuming running
        // jobs end at their *estimated* ends?
        let mut ends: Vec<(u64, u32)> = self
            .running
            .iter()
            .map(|r| (r.end_estimated.max(self.now), r.nodes))
            .collect();
        ends.sort_unstable();
        let mut avail = self.free_nodes;
        let mut shadow = u64::MAX;
        for (end, nodes) in ends {
            avail += nodes;
            if avail >= head.nodes.min(self.total_nodes) {
                shadow = end;
                break;
            }
        }

        // Backfill: any later job that fits now and (by its estimate) will
        // finish before the head's reservation may jump the queue.
        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            // With a revised interval, backfill fit-checks the optimistic
            // `lo`: the hole-filling side of interval-aware scheduling.
            // (`hi` still guards the reservation via start_job above.)
            let fit = match self.intervals.get(&cand.id) {
                Some(&(lo, _)) => lo,
                None => cand.estimate,
            };
            if cand.nodes <= self.free_nodes && self.now.saturating_add(fit) <= shadow {
                self.queue.remove(i);
                if let Some(tel) = &self.telemetry {
                    tel.jobs_backfilled.inc();
                }
                self.start_job(cand);
                // A start never frees nodes, so the head still does not fit;
                // the shadow computed from estimated ends is unchanged by
                // construction (backfilled jobs finish before it).
            } else {
                i += 1;
            }
        }
    }
}

/// Simulate a whole trace: submit in time order, drain, return the schedule.
///
/// Jobs requesting more nodes than the cluster are clamped to the full
/// machine (matching how real schedulers reject-or-clamp oversized asks).
pub fn simulate(total_nodes: u32, jobs: &[SimJob]) -> Schedule {
    let mut engine = SimEngine::new(total_nodes);
    let mut sorted: Vec<SimJob> = jobs.to_vec();
    sorted.sort_by_key(|j| (j.submit, j.id));
    for job in sorted {
        engine.submit(job);
    }
    engine.drain()
}

/// [`simulate`] with an instrumented engine: submission/start/backfill
/// counters, sim-step totals, and per-submit latency land in `telemetry`.
pub fn simulate_with_telemetry(
    total_nodes: u32,
    jobs: &[SimJob],
    telemetry: &Telemetry,
) -> Schedule {
    let mut engine = SimEngine::new(total_nodes);
    engine.attach_telemetry(telemetry);
    let mut sorted: Vec<SimJob> = jobs.to_vec();
    sorted.sort_by_key(|j| (j.submit, j.id));
    for job in sorted {
        engine.submit(job);
    }
    engine.drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submit: u64, nodes: u32, runtime: u64, estimate: u64) -> SimJob {
        SimJob {
            id,
            submit,
            nodes,
            runtime,
            estimate,
        }
    }

    #[test]
    fn single_job_starts_immediately() {
        let s = simulate(10, &[job(0, 5, 4, 100, 100)]);
        assert_eq!(s.entries[0].start, 5);
        assert_eq!(s.entries[0].end, 105);
        assert_eq!(s.entries[0].turnaround(), 100);
    }

    #[test]
    fn fcfs_queues_when_full() {
        let jobs = [job(0, 0, 10, 100, 100), job(1, 1, 10, 50, 50)];
        let s = simulate(10, &jobs);
        assert_eq!(s.entries[0].start, 0);
        assert_eq!(s.entries[1].start, 100, "second job waits for first");
    }

    #[test]
    fn parallel_jobs_share_the_cluster() {
        let jobs = [job(0, 0, 4, 100, 100), job(1, 0, 4, 100, 100)];
        let s = simulate(10, &jobs);
        assert_eq!(s.entries[0].start, 0);
        assert_eq!(s.entries[1].start, 0);
    }

    #[test]
    fn easy_backfill_lets_short_jobs_jump() {
        // Head job (8 nodes) blocks behind job 0; a 2-node job estimated to
        // finish before the head's reservation backfills immediately.
        let jobs = [
            job(0, 0, 8, 100, 100), // runs now
            job(1, 1, 8, 100, 100), // head, must wait until t=100
            job(2, 2, 2, 10, 10),   // fits the 2 free nodes, ends by t=12 <= 100
        ];
        let s = simulate(10, &jobs);
        assert_eq!(s.entries[2].start, 2, "short job backfills");
        assert_eq!(s.entries[1].start, 100);
    }

    #[test]
    fn backfill_does_not_delay_head_reservation() {
        // A backfill candidate whose estimate crosses the head's shadow time
        // must NOT start even though nodes are free.
        let jobs = [
            job(0, 0, 8, 100, 100),
            job(1, 1, 8, 100, 100), // head reserved at t=100
            job(2, 2, 2, 500, 500), // would run past t=100 on head's nodes
        ];
        let s = simulate(10, &jobs);
        assert_eq!(s.entries[1].start, 100, "head keeps its reservation");
        assert!(
            s.entries[2].start >= 100,
            "long candidate must not backfill"
        );
    }

    #[test]
    fn underestimates_still_complete_at_actual_runtime() {
        // Planning uses the estimate, execution uses the actual runtime.
        let jobs = [job(0, 0, 10, 200, 50), job(1, 1, 10, 10, 10)];
        let s = simulate(10, &jobs);
        assert_eq!(s.entries[0].end, 200);
        assert_eq!(
            s.entries[1].start, 200,
            "successor waits for the real completion"
        );
    }

    #[test]
    fn oversized_job_clamps_to_cluster() {
        let s = simulate(10, &[job(0, 0, 99, 10, 10)]);
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].start, 0);
    }

    #[test]
    fn entries_are_ordered_by_id_and_complete() {
        let jobs: Vec<SimJob> = (0..50)
            .map(|i| job(i, i * 3, 1 + (i % 7) as u32, 30 + i * 2, 40 + i * 2))
            .collect();
        let s = simulate(8, &jobs);
        assert_eq!(s.entries.len(), jobs.len());
        for (i, e) in s.entries.iter().enumerate() {
            assert_eq!(e.id, i as u64);
            assert!(e.start >= e.submit);
            assert_eq!(e.end - e.start, jobs[i].runtime);
        }
    }

    #[test]
    fn node_capacity_is_never_exceeded() {
        let jobs: Vec<SimJob> = (0..200)
            .map(|i| {
                job(
                    i,
                    i,
                    1 + (i % 10) as u32,
                    20 + (i * 13) % 100,
                    30 + (i * 13) % 100,
                )
            })
            .collect();
        let s = simulate(16, &jobs);
        // Sweep all start/end events and check concurrent node usage.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for (e, j) in s.entries.iter().zip(&jobs) {
            events.push((e.start, j.nodes as i64));
            events.push((e.end, -(j.nodes as i64)));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // process releases before grabs at same t
        let mut in_use = 0i64;
        for (_, d) in events {
            in_use += d;
            assert!(in_use <= 16, "capacity exceeded: {in_use}");
        }
    }

    #[test]
    fn telemetry_counts_submissions_starts_and_backfills() {
        let t = Telemetry::default();
        let jobs = [
            job(0, 0, 8, 100, 100), // runs now
            job(1, 1, 8, 100, 100), // head, waits
            job(2, 2, 2, 10, 10),   // backfills
        ];
        let instrumented = simulate_with_telemetry(10, &jobs, &t);
        let plain = simulate(10, &jobs);
        assert_eq!(
            instrumented.entries, plain.entries,
            "instrumentation must not perturb the schedule"
        );

        let text = t.prometheus();
        assert!(text.contains("sched_jobs_submitted_total 3"), "{text}");
        assert!(text.contains("sched_jobs_started_total 3"), "{text}");
        assert!(text.contains("sched_jobs_backfilled_total 1"), "{text}");
        assert!(text.contains("sched_submit_seconds_count 3"), "{text}");
        // Every submission triggers at least one scheduling pass.
        assert!(!text.contains("sched_sim_steps_total 0"), "{text}");
    }

    #[test]
    fn speculative_forks_do_not_record_telemetry() {
        let t = Telemetry::default();
        let mut engine = SimEngine::new(10);
        engine.attach_telemetry(&t);
        engine.submit(job(0, 0, 8, 100, 100));
        engine.submit(job(1, 1, 8, 100, 100));
        let before = t.prometheus();
        let fork = engine.fork_with_predictions(|_| 50);
        fork.run_until_finished(u64::MAX);
        assert_eq!(
            t.prometheus(),
            before,
            "fork rollout leaked into live metrics"
        );
    }

    #[test]
    fn interval_lo_admits_backfill_the_point_estimate_refused() {
        // Same shape as backfill_does_not_delay_head_reservation, but the
        // candidate's revised interval says it is actually short: the
        // optimistic lo lets it fill the hole.
        let mut engine = SimEngine::new(10);
        engine.submit(job(0, 0, 8, 100, 100));
        engine.submit(job(1, 1, 8, 100, 100)); // head, reserved at t=100
        let mut pessimist = engine.clone();
        // Candidate requests 500s but a revision bounds it to [10, 40].
        engine.set_estimate_interval(2, 10, 40);
        engine.submit(job(2, 2, 2, 30, 500));
        pessimist.submit(job(2, 2, 2, 30, 500));
        let s = engine.drain();
        assert_eq!(s.entries[2].start, 2, "lo admits the backfill");
        let p = pessimist.drain();
        assert!(p.entries[2].start >= 100, "without the interval it waits");
    }

    #[test]
    fn interval_hi_extends_a_running_jobs_reservation() {
        let mut engine = SimEngine::new(10);
        engine.submit(job(0, 0, 8, 300, 100)); // will badly overrun
        engine.submit(job(1, 1, 8, 100, 100)); // head, shadow at t=100
                                               // Revision: job 0 actually ends near t=300, so the backfill window
                                               // behind the head's new t=300 reservation is wide open.
        assert!(engine.set_estimate_interval(0, 250, 320));
        engine.submit(job(2, 2, 2, 150, 150));
        let s = engine.drain();
        assert_eq!(
            s.entries[2].start, 2,
            "hi moved the shadow out, the 150s candidate fits"
        );
    }

    #[test]
    fn kill_running_frees_nodes_and_truncates_the_entry() {
        let t = Telemetry::default();
        let mut engine = SimEngine::new(10);
        engine.attach_telemetry(&t);
        engine.submit(job(0, 0, 8, 1000, 1000));
        engine.submit(job(1, 1, 8, 50, 50)); // blocked behind job 0
        engine.advance_to(10);
        let killed = engine.kill_running(0).expect("job 0 is running");
        assert_eq!(killed.killed_at, 10);
        assert_eq!(killed.projected_end, 1000);
        assert_eq!(killed.node_seconds_saved(), 8 * 990);
        assert_eq!(engine.kill_running(0), None, "idempotent: already gone");
        let s = engine.drain();
        assert_eq!(s.entries[0].end, 10, "entry truncated to the kill");
        assert_eq!(
            s.entries[1].start, 10,
            "blocked job starts on the freed nodes"
        );
        let text = t.prometheus();
        assert!(text.contains("sched_jobs_killed_total 1"), "{text}");
        assert!(text.contains("sched_jobs_requeued_total 0"), "{text}");
    }

    #[test]
    fn kill_and_requeue_reruns_the_job_from_scratch() {
        let t = Telemetry::default();
        let mut engine = SimEngine::new(10);
        engine.attach_telemetry(&t);
        engine.submit(job(0, 0, 10, 100, 100));
        engine.advance_to(30);
        let killed = engine.kill_and_requeue(0, 120).expect("running");
        assert_eq!(killed.killed_at, 30);
        let s = engine.drain();
        assert_eq!(s.entries.len(), 1, "one entry for the successful attempt");
        assert_eq!(s.entries[0].start, 30, "restarts at the kill time");
        assert_eq!(s.entries[0].end, 130, "full runtime again");
        assert!(t.prometheus().contains("sched_jobs_requeued_total 1"));
    }

    #[test]
    fn running_info_exposes_start_times() {
        let mut engine = SimEngine::new(10);
        engine.submit(job(0, 5, 4, 100, 100));
        engine.advance_to(20);
        let info: Vec<RunningJob> = engine.running_info().collect();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].start, 5);
        assert_eq!(info[0].end_actual, 105);
        assert_eq!(engine.now() - info[0].start, 15, "elapsed is derivable");
    }

    #[test]
    fn better_estimates_do_not_change_actual_runtimes() {
        let jobs: Vec<SimJob> = (0..30).map(|i| job(i, i * 5, 4, 100, 400)).collect();
        let exact: Vec<SimJob> = jobs
            .iter()
            .map(|j| SimJob {
                estimate: j.runtime,
                ..*j
            })
            .collect();
        let a = simulate(8, &jobs);
        let b = simulate(8, &exact);
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.end - x.start, y.end - y.start);
        }
    }
}
