//! Turnaround-time prediction by system snapshotting (paper §4.2).
//!
//! For every submission the paper (1) copies the system state, (2) replaces
//! each queued/running job's runtime with its predicted runtime, (3) rolls
//! the copy forward until the submitted job completes, and (4) records
//! `completion − submission` as the predicted turnaround.

use crate::engine::{SimEngine, SimJob};
use std::collections::HashMap;

/// Drive a full trace through the simulator and predict every job's
/// turnaround at its submission instant.
///
/// * `jobs` — the trace, with **actual** runtimes (drives the real system
///   evolution) and scheduler-visible estimates (user requests drive
///   planning, exactly as on the production machine);
/// * `predicted_runtime` — the per-job runtime predictions (PRIONN's, the
///   user's, or perfect knowledge) used inside each snapshot.
///
/// Returns `(simulated_turnaround, predicted_turnaround)` per job, in the
/// submission order of `jobs`.
pub fn predict_turnarounds(
    total_nodes: u32,
    jobs: &[SimJob],
    predicted_runtime: &HashMap<u64, u64>,
) -> Vec<(u64, u64)> {
    let mut sorted: Vec<SimJob> = jobs.to_vec();
    sorted.sort_by_key(|j| (j.submit, j.id));

    let mut engine = SimEngine::new(total_nodes);
    let mut predicted_turnaround: HashMap<u64, u64> = HashMap::with_capacity(sorted.len());

    for job in &sorted {
        engine.submit(*job);
        // Snapshot with predictions and roll forward until this job is done.
        let fork = engine
            .fork_with_predictions(|id| predicted_runtime.get(&id).copied().unwrap_or(1).max(1));
        let done = fork
            .run_until_finished(job.id)
            .expect("submitted job must eventually finish in its own snapshot");
        predicted_turnaround.insert(job.id, done - job.submit);
    }

    let schedule = engine.drain();
    let actual: HashMap<u64, u64> = schedule
        .entries
        .iter()
        .map(|e| (e.id, e.turnaround()))
        .collect();

    sorted
        .iter()
        .map(|j| (actual[&j.id], predicted_turnaround[&j.id]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submit: u64, nodes: u32, runtime: u64, estimate: u64) -> SimJob {
        SimJob {
            id,
            submit,
            nodes,
            runtime,
            estimate,
        }
    }

    fn exact_predictions(jobs: &[SimJob]) -> HashMap<u64, u64> {
        jobs.iter().map(|j| (j.id, j.runtime)).collect()
    }

    #[test]
    fn empty_cluster_prediction_is_exact_with_perfect_runtime() {
        let jobs = [job(0, 10, 4, 100, 400)];
        let out = predict_turnarounds(8, &jobs, &exact_predictions(&jobs));
        assert_eq!(out, vec![(100, 100)]);
    }

    #[test]
    fn perfect_predictions_match_simulated_turnaround_under_contention() {
        // With exact runtime predictions, the snapshot simulation evolves
        // identically to the real one, so predictions are exact — as long as
        // planning estimates equal the predictions too.
        let jobs: Vec<SimJob> = (0..20)
            .map(|i| {
                let rt = 50 + (i * 37) % 200;
                job(i, i * 10, 1 + (i % 5) as u32, rt, rt)
            })
            .collect();
        let out = predict_turnarounds(6, &jobs, &exact_predictions(&jobs));
        for (i, (actual, pred)) in out.iter().enumerate() {
            assert_eq!(actual, pred, "job {i}");
        }
    }

    #[test]
    fn bad_predictions_produce_turnaround_error() {
        // Jobs run 100s each; queue them back-to-back on a full cluster and
        // predict 10s runtimes: predicted turnaround must underestimate.
        let jobs = [job(0, 0, 8, 100, 100), job(1, 1, 8, 100, 100)];
        let tiny: HashMap<u64, u64> = jobs.iter().map(|j| (j.id, 10u64)).collect();
        let out = predict_turnarounds(8, &jobs, &tiny);
        let (actual, pred) = out[1];
        assert_eq!(actual, 199);
        assert!(
            pred < actual,
            "underpredicted runtimes give short turnarounds ({pred})"
        );
    }

    #[test]
    fn running_jobs_past_their_prediction_complete_imminently() {
        // Job 0 predicted at 10s but actually runs 1000s; job 1 arrives at
        // t=500 when job 0 has outlived its prediction. The snapshot should
        // assume job 0 ends right away, not crash or hang.
        let jobs = [job(0, 0, 8, 1000, 1000), job(1, 500, 8, 100, 100)];
        let mut preds = exact_predictions(&jobs);
        preds.insert(0, 10);
        let out = predict_turnarounds(8, &jobs, &preds);
        let (actual, pred) = out[1];
        assert_eq!(actual, 600); // waits until t=1000, runs 100
        assert!(
            pred <= 110,
            "snapshot believed job 0 ends imminently ({pred})"
        );
    }

    #[test]
    fn missing_predictions_default_to_one_second() {
        let jobs = [job(0, 0, 4, 100, 100)];
        let out = predict_turnarounds(8, &jobs, &HashMap::new());
        assert_eq!(out[0].1, 1);
    }

    #[test]
    fn output_order_tracks_submission_order() {
        let jobs = [job(5, 100, 1, 10, 10), job(3, 0, 1, 10, 10)];
        let out = predict_turnarounds(4, &jobs, &exact_predictions(&jobs));
        // First output row is the earliest submission (id 3).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (10, 10));
        assert_eq!(out[1], (10, 10));
    }
}
