//! IO-burst detection and the windowed sensitivity/precision metrics of
//! Figs 13 & 15.
//!
//! The paper defines a burst as any per-minute bandwidth above one standard
//! deviation over the mean of the *actual* system IO distribution, then asks
//! whether each actual burst has a predicted burst within a ±window, and
//! vice versa.

/// Sensitivity (recall) and precision for burst prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstMetrics {
    /// TP / (TP + FN): the share of actual bursts that were predicted
    /// within the window.
    pub sensitivity: f64,
    /// TP / (TP + FP): the share of predicted bursts that match an actual
    /// burst within the window.
    pub precision: f64,
    /// Number of actual burst minutes.
    pub actual_bursts: usize,
    /// Number of predicted burst minutes.
    pub predicted_bursts: usize,
}

/// The burst threshold: mean + 1σ of the actual timeline.
///
/// Non-finite entries (a poisoned upstream aggregate) are skipped rather
/// than allowed to turn the threshold into `NaN` — a `NaN` threshold makes
/// *every* comparison false and silently reports zero bursts. An empty or
/// all-non-finite timeline yields `0.0`, and a zero-variance timeline
/// yields exactly its mean (`σ = 0`), never `NaN`.
pub fn burst_threshold(timeline: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0f64;
    for &v in timeline {
        if v.is_finite() {
            n += 1;
            sum += v;
        }
    }
    if n == 0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let var = timeline
        .iter()
        .filter(|v| v.is_finite())
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n as f64;
    // (v - mean)^2 is non-negative termwise, but guard the sqrt anyway so a
    // pathological accumulation can never produce NaN.
    mean + var.max(0.0).sqrt()
}

/// Minute indices whose value exceeds `threshold`.
pub fn burst_minutes(timeline: &[f64], threshold: f64) -> Vec<usize> {
    timeline
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| (v > threshold).then_some(i))
        .collect()
}

/// Windowed burst sensitivity/precision.
///
/// `window_minutes` is the full window width; a window of 5 means a
/// prediction within ±2 minutes counts (the paper: "with a three-minute
/// window, we look … one minute before, at, and one minute after").
///
/// The threshold is always derived from the **actual** timeline, and the
/// same threshold is applied to the predicted timeline.
pub fn burst_metrics(actual: &[f64], predicted: &[f64], window_minutes: usize) -> BurstMetrics {
    let radius = window_minutes.saturating_sub(1) / 2;
    let threshold = burst_threshold(actual);
    let actual_bursts = burst_minutes(actual, threshold);
    let predicted_bursts = burst_minutes(predicted, threshold);

    let within = |t: usize, sorted: &[usize]| -> bool {
        let lo = t.saturating_sub(radius);
        let hi = t + radius;
        let i = sorted.partition_point(|&x| x < lo);
        sorted.get(i).is_some_and(|&x| x <= hi)
    };

    let tp_actual = actual_bursts
        .iter()
        .filter(|&&t| within(t, &predicted_bursts))
        .count();
    let tp_predicted = predicted_bursts
        .iter()
        .filter(|&&t| within(t, &actual_bursts))
        .count();

    BurstMetrics {
        sensitivity: if actual_bursts.is_empty() {
            1.0
        } else {
            tp_actual as f64 / actual_bursts.len() as f64
        },
        precision: if predicted_bursts.is_empty() {
            1.0
        } else {
            tp_predicted as f64 / predicted_bursts.len() as f64
        },
        actual_bursts: actual_bursts.len(),
        predicted_bursts: predicted_bursts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky(len: usize, spikes: &[usize]) -> Vec<f64> {
        let mut t = vec![1.0; len];
        for &s in spikes {
            t[s] = 100.0;
        }
        t
    }

    #[test]
    fn threshold_is_mean_plus_sigma() {
        let t = [0.0, 0.0, 0.0, 4.0];
        // mean 1, sigma sqrt(3) ≈ 1.732
        assert!((burst_threshold(&t) - (1.0 + 3.0f64.sqrt())).abs() < 1e-9);
        assert_eq!(burst_threshold(&[]), 0.0);
    }

    #[test]
    fn exact_prediction_is_perfect() {
        let a = spiky(100, &[10, 50, 90]);
        let m = burst_metrics(&a, &a, 5);
        assert_eq!(m.sensitivity, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.actual_bursts, 3);
    }

    #[test]
    fn shifted_prediction_within_window_counts() {
        let a = spiky(100, &[50]);
        let p = spiky(100, &[52]);
        let hit = burst_metrics(&a, &p, 5); // ±2
        assert_eq!(hit.sensitivity, 1.0);
        assert_eq!(hit.precision, 1.0);
        let miss = burst_metrics(&a, &p, 3); // ±1
        assert_eq!(miss.sensitivity, 0.0);
        assert_eq!(miss.precision, 0.0);
    }

    #[test]
    fn wider_windows_never_reduce_metrics() {
        let a = spiky(200, &[20, 60, 100, 140]);
        let p = spiky(200, &[25, 61, 90, 170]);
        let mut last = burst_metrics(&a, &p, 3);
        for w in [5, 11, 21, 41, 61] {
            let m = burst_metrics(&a, &p, w);
            assert!(m.sensitivity >= last.sensitivity, "window {w}");
            assert!(m.precision >= last.precision, "window {w}");
            last = m;
        }
    }

    #[test]
    fn missed_and_spurious_bursts_split_metrics() {
        let a = spiky(100, &[10, 50]);
        let p = spiky(100, &[10, 80]); // hits 10, misses 50, fabricates 80
        let m = burst_metrics(&a, &p, 5);
        assert_eq!(m.sensitivity, 0.5);
        assert_eq!(m.precision, 0.5);
    }

    #[test]
    fn flat_timeline_has_no_bursts_and_perfect_scores() {
        let a = vec![5.0; 50];
        let p = vec![5.0; 50];
        let m = burst_metrics(&a, &p, 5);
        assert_eq!(m.actual_bursts, 0);
        assert_eq!(m.sensitivity, 1.0);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn burst_minutes_are_sorted_indices() {
        let t = [0.0, 10.0, 0.0, 10.0];
        let b = burst_minutes(&t, 5.0);
        assert_eq!(b, vec![1, 3]);
    }

    #[test]
    fn empty_timelines_yield_finite_perfect_metrics() {
        // Regression: an empty pair must not divide by zero anywhere.
        let m = burst_metrics(&[], &[], 5);
        assert_eq!(m.actual_bursts, 0);
        assert_eq!(m.predicted_bursts, 0);
        assert_eq!(m.sensitivity, 1.0);
        assert_eq!(m.precision, 1.0);
        assert!(m.sensitivity.is_finite() && m.precision.is_finite());
    }

    #[test]
    fn zero_variance_timeline_threshold_is_mean_not_nan() {
        // Regression: σ = 0 must give threshold == mean exactly, with no
        // minute strictly above it (nothing can exceed mean + 0).
        let t = vec![7.5; 64];
        let thr = burst_threshold(&t);
        assert!(thr.is_finite());
        assert!((thr - 7.5).abs() < 1e-12);
        assert!(burst_minutes(&t, thr).is_empty());
        let m = burst_metrics(&t, &t, 5);
        assert_eq!(m.sensitivity, 1.0);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn non_finite_entries_do_not_poison_the_threshold() {
        // Regression: one NaN/inf minute (a poisoned aggregate) must not
        // turn the threshold into NaN and silently disable burst detection.
        let mut t = spiky(50, &[25]);
        t[3] = f64::NAN;
        t[4] = f64::INFINITY;
        let thr = burst_threshold(&t);
        assert!(thr.is_finite(), "threshold {thr}");
        // The real spike is still detected against the finite-only stats.
        assert!(burst_minutes(&t, thr).contains(&25));
        let m = burst_metrics(&t, &t, 5);
        assert!(m.sensitivity.is_finite() && m.precision.is_finite());
        assert_eq!(m.sensitivity, 1.0);
    }

    #[test]
    fn window_zero_behaves_like_exact_match() {
        let a = spiky(40, &[10]);
        let p = spiky(40, &[11]);
        let m = burst_metrics(&a, &p, 0);
        assert_eq!(m.sensitivity, 0.0);
        assert_eq!(m.precision, 0.0);
        let exact = burst_metrics(&a, &a, 0);
        assert_eq!(exact.sensitivity, 1.0);
    }
}
