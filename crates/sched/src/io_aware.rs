//! An IO-aware scheduling policy — the paper's motivating application.
//!
//! PRIONN's per-job IO predictions exist to let a scheduler avoid
//! co-scheduling IO-hungry jobs (§1, citing Herbein et al., HPDC'16). This
//! module implements that policy on top of the FCFS+EASY engine: a job may
//! only start if the *predicted* aggregate filesystem bandwidth of running
//! jobs plus its own predicted bandwidth stays under a budget. A starvation
//! guard lifts the gate for jobs that have waited too long.
//!
//! This goes beyond the paper's evaluation (which predicts bursts but does
//! not close the loop); it is the natural "future work" the paper points
//! at, and it is exercised by `experiments ioaware`.

use crate::engine::{Schedule, ScheduleEntry, SimJob};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of the IO-aware admission policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IoAwareConfig {
    /// Aggregate predicted-bandwidth budget, bytes/second. Jobs that would
    /// push the running total above this wait (IO gating).
    pub bandwidth_budget: f64,
    /// Starvation guard: after waiting this many seconds, a job ignores the
    /// IO gate (never the node-count constraint).
    pub max_io_delay: u64,
}

impl Default for IoAwareConfig {
    fn default() -> Self {
        IoAwareConfig {
            bandwidth_budget: 1.0e9,
            max_io_delay: 4 * 3600,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    nodes: u32,
    bandwidth: f64,
    end: u64,
}

/// An FCFS scheduler with EASY-style backfill *and* IO-bandwidth gating.
///
/// Kept separate from [`crate::engine::SimEngine`] so the baseline engine
/// stays exactly the paper's: this variant changes admission, which alters
/// schedules and therefore must not leak into the reproduction experiments.
#[derive(Debug, Clone)]
pub struct IoAwareEngine {
    cfg: IoAwareConfig,
    total_nodes: u32,
    free_nodes: u32,
    now: u64,
    current_bandwidth: f64,
    running: Vec<Running>,
    queue: VecDeque<SimJob>,
    bandwidth_of: HashMap<u64, f64>,
    finished: Vec<ScheduleEntry>,
}

impl IoAwareEngine {
    /// An empty cluster with per-job predicted bandwidths (bytes/second).
    /// Jobs without an entry are treated as IO-free (never gated).
    pub fn new(total_nodes: u32, cfg: IoAwareConfig, bandwidth_of: HashMap<u64, f64>) -> Self {
        assert!(total_nodes > 0, "cluster needs nodes");
        IoAwareEngine {
            cfg,
            total_nodes,
            free_nodes: total_nodes,
            now: 0,
            current_bandwidth: 0.0,
            running: Vec::new(),
            queue: VecDeque::new(),
            bandwidth_of,
            finished: Vec::new(),
        }
    }

    /// Predicted aggregate bandwidth of currently running jobs.
    pub fn current_bandwidth(&self) -> f64 {
        self.current_bandwidth
    }

    /// Submit a job at its submit time and run a scheduling pass.
    pub fn submit(&mut self, job: SimJob) {
        self.advance_to(job.submit.max(self.now));
        self.queue.push_back(job);
        self.try_schedule();
    }

    /// Run to completion and return the schedule.
    pub fn drain(mut self) -> Schedule {
        while !self.running.is_empty() || !self.queue.is_empty() {
            let target = self.next_event().unwrap_or(self.now).max(self.now + 1);
            self.advance_to(target);
        }
        let mut entries = self.finished;
        entries.sort_by_key(|e| e.id);
        Schedule { entries }
    }

    /// The next instant at which the schedule can change: a completion or a
    /// queued job's starvation deadline.
    fn next_event(&self) -> Option<u64> {
        let next_end = self.running.iter().map(|r| r.end).min();
        let next_deadline = self
            .queue
            .iter()
            .map(|j| j.submit + self.cfg.max_io_delay)
            .filter(|&d| d > self.now)
            .min();
        match (next_end, next_deadline) {
            (Some(e), Some(d)) => Some(e.min(d)),
            (Some(e), None) => Some(e),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    fn advance_to(&mut self, t: u64) {
        loop {
            match self.next_event() {
                Some(step) if step <= t => {
                    self.now = step;
                    let mut i = 0;
                    while i < self.running.len() {
                        if self.running[i].end <= step {
                            let r = self.running.swap_remove(i);
                            self.free_nodes += r.nodes;
                            self.current_bandwidth -= r.bandwidth;
                        } else {
                            i += 1;
                        }
                    }
                    self.current_bandwidth = self.current_bandwidth.max(0.0);
                    self.try_schedule();
                }
                _ => break,
            }
        }
        self.now = t;
        self.try_schedule();
    }

    fn io_admits(&self, job: &SimJob) -> bool {
        let bw = self.bandwidth_of.get(&job.id).copied().unwrap_or(0.0);
        if bw <= 0.0 {
            return true;
        }
        if self.now.saturating_sub(job.submit) >= self.cfg.max_io_delay {
            return true; // starvation guard
        }
        if bw > self.cfg.bandwidth_budget {
            // A job that exceeds the budget on its own can never be admitted
            // by the cap; run it when the system is otherwise IO-idle (its
            // burst is unavoidable, but it won't stack on other IO). The
            // epsilon absorbs float residue from bandwidth add/subtract.
            return self.current_bandwidth <= 1e-9 * self.cfg.bandwidth_budget.max(1.0);
        }
        self.current_bandwidth + bw <= self.cfg.bandwidth_budget
    }

    fn start_job(&mut self, job: SimJob) {
        self.free_nodes -= job.nodes;
        self.current_bandwidth += self.bandwidth_of.get(&job.id).copied().unwrap_or(0.0);
        self.finished.push(ScheduleEntry {
            id: job.id,
            submit: job.submit,
            start: self.now,
            end: self.now + job.runtime,
        });
        self.running.push(Running {
            nodes: job.nodes,
            bandwidth: self.bandwidth_of.get(&job.id).copied().unwrap_or(0.0),
            end: self.now + job.runtime,
        });
    }

    /// FCFS over IO-admissible jobs, then conservative backfill with both
    /// node and IO gates.
    fn try_schedule(&mut self) {
        // FCFS pass: start queue-head jobs while they fit both gates; an
        // IO-gated head does not block IO-free successors (that reordering
        // *is* the policy), but a node-blocked head keeps its reservation.
        loop {
            let Some(head) = self.queue.front() else {
                return;
            };
            let mut job = *head;
            job.nodes = job.nodes.min(self.total_nodes);
            if job.nodes <= self.free_nodes && self.io_admits(&job) {
                self.queue.pop_front();
                self.start_job(job);
            } else {
                break;
            }
        }
        let Some(head) = self.queue.front().copied() else {
            return;
        };

        // Shadow time for the head (estimated ends of running jobs).
        let head_nodes = head.nodes.min(self.total_nodes);
        let mut ends: Vec<(u64, u32)> = self
            .running
            .iter()
            .map(|r| (r.end.max(self.now), r.nodes))
            .collect();
        ends.sort_unstable();
        let mut avail = self.free_nodes;
        let mut shadow = u64::MAX;
        for (end, nodes) in ends {
            avail += nodes;
            if avail >= head_nodes {
                shadow = end;
                break;
            }
        }

        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if cand.nodes <= self.free_nodes
                && self.now.saturating_add(cand.estimate) <= shadow
                && self.io_admits(&cand)
            {
                self.queue.remove(i);
                self.start_job(cand);
            } else {
                i += 1;
            }
        }
    }
}

/// Simulate a trace under the IO-aware policy.
pub fn simulate_io_aware(
    total_nodes: u32,
    jobs: &[SimJob],
    cfg: IoAwareConfig,
    bandwidth_of: HashMap<u64, f64>,
) -> Schedule {
    let mut engine = IoAwareEngine::new(total_nodes, cfg, bandwidth_of);
    let mut sorted: Vec<SimJob> = jobs.to_vec();
    sorted.sort_by_key(|j| (j.submit, j.id));
    for job in sorted {
        engine.submit(job);
    }
    engine.drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submit: u64, nodes: u32, runtime: u64) -> SimJob {
        SimJob {
            id,
            submit,
            nodes,
            runtime,
            estimate: runtime,
        }
    }

    fn bw(entries: &[(u64, f64)]) -> HashMap<u64, f64> {
        entries.iter().copied().collect()
    }

    #[test]
    fn io_free_jobs_schedule_like_fcfs() {
        let jobs = [job(0, 0, 4, 100), job(1, 0, 4, 100)];
        let s = simulate_io_aware(10, &jobs, IoAwareConfig::default(), HashMap::new());
        assert_eq!(s.entries[0].start, 0);
        assert_eq!(s.entries[1].start, 0);
    }

    #[test]
    fn second_io_heavy_job_waits_for_budget() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 100.0,
            max_io_delay: 100_000,
        };
        let jobs = [job(0, 0, 2, 100), job(1, 1, 2, 100)];
        let s = simulate_io_aware(10, &jobs, cfg, bw(&[(0, 80.0), (1, 80.0)]));
        assert_eq!(s.entries[0].start, 0);
        assert_eq!(
            s.entries[1].start, 100,
            "gated until job 0 releases bandwidth"
        );
    }

    #[test]
    fn io_free_job_overtakes_gated_head() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 100.0,
            max_io_delay: 100_000,
        };
        let jobs = [
            job(0, 0, 2, 100), // heavy, runs
            job(1, 1, 2, 50),  // heavy, gated
            job(2, 2, 2, 50),  // IO-free, overtakes
        ];
        let s = simulate_io_aware(10, &jobs, cfg, bw(&[(0, 80.0), (1, 80.0)]));
        assert_eq!(s.entries[2].start, 2, "IO-free job starts immediately");
        assert!(s.entries[1].start >= 100);
    }

    #[test]
    fn starvation_guard_eventually_admits() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 100.0,
            max_io_delay: 30,
        };
        let jobs = [job(0, 0, 2, 1_000), job(1, 1, 2, 50)];
        let s = simulate_io_aware(10, &jobs, cfg, bw(&[(0, 80.0), (1, 80.0)]));
        // Job 1 would wait 999s for bandwidth, but the guard admits at ~31s.
        assert!(s.entries[1].start <= 40, "start {}", s.entries[1].start);
    }

    #[test]
    fn node_capacity_still_respected_under_io_gating() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 1e12,
            max_io_delay: 10,
        };
        let jobs: Vec<SimJob> = (0..60)
            .map(|i| job(i, i, 1 + (i % 6) as u32, 30 + (i * 11) % 90))
            .collect();
        let bws: HashMap<u64, f64> = (0..60).map(|i| (i, 1e6 * (i % 7) as f64)).collect();
        let s = simulate_io_aware(12, &jobs, cfg, bws);
        let mut events: Vec<(u64, i64)> = Vec::new();
        for (e, j) in s.entries.iter().zip(&jobs) {
            events.push((e.start, j.nodes as i64));
            events.push((e.end, -(j.nodes as i64)));
        }
        events.sort_by_key(|&(t, d)| (t, d));
        let mut in_use = 0i64;
        for (_, d) in events {
            in_use += d;
            assert!(in_use <= 12);
        }
    }

    #[test]
    fn budget_caps_predicted_concurrent_bandwidth_before_guard_kicks_in() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 150.0,
            max_io_delay: 1_000_000,
        };
        let jobs: Vec<SimJob> = (0..10).map(|i| job(i, i, 1, 500)).collect();
        let bws: HashMap<u64, f64> = (0..10).map(|i| (i, 60.0)).collect();
        let s = simulate_io_aware(64, &jobs, cfg, bws.clone());
        // Sweep concurrent predicted bandwidth.
        let mut events: Vec<(u64, f64)> = Vec::new();
        for e in &s.entries {
            events.push((e.start, bws[&e.id]));
            events.push((e.end, -bws[&e.id]));
        }
        // Process releases before grabs at identical instants.
        events.sort_by_key(|a| (a.0, a.1 >= 0.0));
        let mut cur = 0.0;
        for (_, d) in events {
            cur += d;
            assert!(cur <= 150.0 + 1e-9, "predicted bandwidth exceeded: {cur}");
        }
    }

    #[test]
    fn all_jobs_complete_even_when_everything_is_gated() {
        let cfg = IoAwareConfig {
            bandwidth_budget: 10.0,
            max_io_delay: 60,
        };
        let jobs: Vec<SimJob> = (0..5).map(|i| job(i, i, 1, 100)).collect();
        let bws: HashMap<u64, f64> = (0..5).map(|i| (i, 50.0)).collect();
        let s = simulate_io_aware(8, &jobs, cfg, bws);
        assert_eq!(s.entries.len(), 5);
    }
}
