//! System IO timelines (paper §4.3): the total IO bandwidth in use at each
//! minute is the sum of the bandwidths of the jobs running at that minute.

use serde::{Deserialize, Serialize};

/// One job's contribution to system IO: an execution interval plus a mean
/// bandwidth (bytes/second) over that interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobIoInterval {
    /// Start time, seconds.
    pub start: u64,
    /// End time, seconds (exclusive).
    pub end: u64,
    /// Mean IO bandwidth over the interval, bytes/second.
    pub bandwidth: f64,
}

/// One job's contribution to a single minute bucket: its bandwidth weighted
/// by the fraction of the minute it overlapped.
///
/// This is *the* formula both the batch [`io_timeline`] and the incremental
/// `prionn-forecast` aggregator use, so the two agree term-by-term: any
/// difference between them can only come from summation order, never from
/// the per-(job, minute) contribution itself.
#[inline]
pub fn minute_contribution(bandwidth: f64, overlap_secs: u64) -> f64 {
    bandwidth * overlap_secs as f64 / 60.0
}

/// Accumulate per-minute system IO bandwidth over `[0, horizon_minutes)`.
///
/// Minute `m` covers seconds `[60m, 60m+60)`; a job contributes its
/// bandwidth weighted by the fraction of that minute it was running.
pub fn io_timeline(intervals: &[JobIoInterval], horizon_minutes: usize) -> Vec<f64> {
    let mut timeline = vec![0.0f64; horizon_minutes];
    let horizon_secs = horizon_minutes as u64 * 60;
    for iv in intervals {
        if iv.end <= iv.start || iv.bandwidth <= 0.0 {
            continue;
        }
        let start = iv.start.min(horizon_secs);
        let end = iv.end.min(horizon_secs);
        let mut m = (start / 60) as usize;
        while (m as u64) * 60 < end {
            let bin_start = m as u64 * 60;
            let bin_end = bin_start + 60;
            let overlap = end.min(bin_end).saturating_sub(start.max(bin_start));
            if overlap > 0 {
                timeline[m] += minute_contribution(iv.bandwidth, overlap);
            }
            m += 1;
            if m >= horizon_minutes {
                break;
            }
        }
    }
    timeline
}

/// Horizon (in whole minutes, rounded up) covering every interval's end.
pub fn horizon_minutes(intervals: &[JobIoInterval]) -> usize {
    intervals
        .iter()
        .map(|iv| iv.end)
        .max()
        .map(|e| e.div_ceil(60) as usize)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_full_minute_contributes_full_bandwidth() {
        let iv = [JobIoInterval {
            start: 0,
            end: 60,
            bandwidth: 100.0,
        }];
        let t = io_timeline(&iv, 2);
        assert_eq!(t, vec![100.0, 0.0]);
    }

    #[test]
    fn partial_minutes_are_weighted() {
        let iv = [JobIoInterval {
            start: 30,
            end: 90,
            bandwidth: 100.0,
        }];
        let t = io_timeline(&iv, 2);
        assert_eq!(t, vec![50.0, 50.0]);
    }

    #[test]
    fn concurrent_jobs_sum() {
        let iv = [
            JobIoInterval {
                start: 0,
                end: 120,
                bandwidth: 10.0,
            },
            JobIoInterval {
                start: 60,
                end: 120,
                bandwidth: 5.0,
            },
        ];
        let t = io_timeline(&iv, 2);
        assert_eq!(t, vec![10.0, 15.0]);
    }

    #[test]
    fn intervals_past_horizon_are_clipped() {
        let iv = [JobIoInterval {
            start: 0,
            end: 6000,
            bandwidth: 7.0,
        }];
        let t = io_timeline(&iv, 3);
        assert_eq!(t, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn degenerate_intervals_are_ignored() {
        let iv = [
            JobIoInterval {
                start: 60,
                end: 60,
                bandwidth: 100.0,
            },
            JobIoInterval {
                start: 90,
                end: 80,
                bandwidth: 100.0,
            },
            JobIoInterval {
                start: 0,
                end: 60,
                bandwidth: 0.0,
            },
        ];
        let t = io_timeline(&iv, 2);
        assert_eq!(t, vec![0.0, 0.0]);
    }

    #[test]
    fn horizon_rounds_up() {
        let iv = [JobIoInterval {
            start: 0,
            end: 61,
            bandwidth: 1.0,
        }];
        assert_eq!(horizon_minutes(&iv), 2);
        assert_eq!(horizon_minutes(&[]), 0);
    }

    #[test]
    fn total_bytes_are_conserved() {
        // Sum over the timeline times 60 equals bandwidth * duration.
        let iv = [JobIoInterval {
            start: 45,
            end: 400,
            bandwidth: 3.0,
        }];
        let t = io_timeline(&iv, 10);
        let total: f64 = t.iter().sum::<f64>() * 60.0;
        assert!((total - 3.0 * 355.0).abs() < 1e-9);
    }
}
